package par

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/precision"
)

// WireFormat selects how the hot point-to-point paths — the halo exchanges
// and the coupler rearranger — encode their float64 payloads on the wire.
//
// WireF64 ships raw float64 slices (the historical, bit-exact format).
// WireGS32 ships precision group-scaled FP32 encodings: each group of
// WireGroup consecutive values shares one power-of-two float64 scale, so the
// payload shrinks from 8 bytes per value to 4 + 8/WireGroup ≈ 4.125 — the
// §5.2.3 mixed-precision machinery applied to the §5.2.4 traffic problem.
// Senders encode from their packed staging buffers into persistent per-peer
// GroupScaled payloads; receivers decode through the error-returning
// DecodeInto, so a corrupt or truncated message surfaces as a typed error
// instead of a rank-killing panic.
type WireFormat int

const (
	// WireF64 is the raw float64 wire format (default, bit-for-bit).
	WireF64 WireFormat = iota
	// WireGS32 is the group-scaled FP32 compressed wire format.
	WireGS32
)

// WireGroup is the quantization group size of the WireGS32 format: one
// shared power-of-two scale per 64 consecutive packed values. Chosen so the
// scale overhead stays under 2 % of the payload while each group tracks the
// local dynamic range of a packed halo row or rearranger block.
const WireGroup = 64

// String implements fmt.Stringer.
func (w WireFormat) String() string {
	switch w {
	case WireF64:
		return "f64"
	case WireGS32:
		return "gs32"
	default:
		return fmt.Sprintf("WireFormat(%d)", int(w))
	}
}

// ParseWireFormat parses the -wire flag spellings.
func ParseWireFormat(s string) (WireFormat, error) {
	switch s {
	case "f64":
		return WireF64, nil
	case "gs32":
		return WireGS32, nil
	default:
		return WireF64, fmt.Errorf("par: unknown wire format %q (have f64, gs32)", s)
	}
}

// PayloadTypeError reports a message whose payload kind does not match what
// the receiver asked for — with two payload kinds on the wire (raw float64
// and group-scaled), a mis-tagged message must surface as a returned error
// on the wire-decode path, not a rank-killing panic.
type PayloadTypeError struct {
	Src, Tag  int
	Got, Want string
}

// Error implements error.
func (e *PayloadTypeError) Error() string {
	return fmt.Sprintf("par: payload type mismatch from rank %d tag %d: got %s, want %s", e.Src, e.Tag, e.Got, e.Want)
}

// payloadKind names a received payload for PayloadTypeError diagnostics.
func payloadKind(m message) string {
	switch {
	case m.f64 != nil:
		return "[]float64"
	case m.gs != nil:
		return "*precision.GroupScaled"
	case m.data != nil:
		return fmt.Sprintf("%T", m.data)
	default:
		return "<empty>"
	}
}

// SendGS is Send specialized to group-scaled compressed payloads with no
// interface boxing: the encoding lands in the message's typed slot beside
// f64, so the compressed halo-exchange hot path over persistent per-peer
// encodings performs zero allocations. The payload is shared by reference,
// exactly like SendF64 — senders must not repack the encoding until the
// receiver is known to have drained it (the parity-buffer discipline).
func SendGS(c *Comm, dst int, tag int, data *precision.GroupScaled) {
	if dst < 0 || dst >= c.state.size {
		panic(fmt.Sprintf("par: SendGS to invalid rank %d (size %d)", dst, c.state.size))
	}
	c.countP2PBytes(&c.stats.SendMsgs, &c.stats.SendBytes, "par.send.msgs", "par.send.bytes", int64(data.Bytes()))
	if f := fault.PointScoped(c.state.member, "par.send", c.rank); f != nil && f.Kind == fault.Stall {
		f.Sleep()
		if c.obs != nil {
			c.obs.AddCount("par.send.dropped", 1)
		}
		return
	}
	c.state.boxes[dst].put(message{src: c.rank, tag: tag, gs: data})
}

// RecvGS blocks until a message from src with the given tag arrives and
// returns its group-scaled payload. A payload of any other kind returns a
// *PayloadTypeError (the message is consumed), so the compressed wire path
// can route the fault through the recovery layer instead of panicking.
func RecvGS(c *Comm, src int, tag int) (*precision.GroupScaled, Status, error) {
	c.state.setWaiting(c.rank, "RecvGS")
	m := c.state.boxes[c.rank].take(src, tag)
	c.state.clearWaiting(c.rank)
	v := m.gs
	if v == nil {
		if g, ok := m.data.(*precision.GroupScaled); ok {
			v = g
		} else {
			return nil, Status{Source: m.src, Tag: m.tag},
				&PayloadTypeError{Src: m.src, Tag: m.tag, Got: payloadKind(m), Want: "*precision.GroupScaled"}
		}
	}
	c.countP2PBytes(&c.stats.RecvMsgs, &c.stats.RecvBytes, "par.recv.msgs", "par.recv.bytes", int64(v.Bytes()))
	return v, Status{Source: m.src, Tag: m.tag}, nil
}

// RecvF64E is the error-returning form of RecvF64: a payload that is neither
// a typed []float64 nor a plain Send of one comes back as a
// *PayloadTypeError instead of a panic. The wire-decode paths (halo
// exchanges, rearranger) use this form so a mis-tagged or corrupt message
// from a faulty peer surfaces through the fault-tolerance layer.
func RecvF64E(c *Comm, src int, tag int) ([]float64, Status, error) {
	c.state.setWaiting(c.rank, "RecvF64")
	m := c.state.boxes[c.rank].take(src, tag)
	c.state.clearWaiting(c.rank)
	v := m.f64
	if v == nil && m.data != nil {
		var ok bool
		v, ok = m.data.([]float64)
		if !ok {
			return nil, Status{Source: m.src, Tag: m.tag},
				&PayloadTypeError{Src: m.src, Tag: m.tag, Got: payloadKind(m), Want: "[]float64"}
		}
	}
	if v == nil && m.gs != nil {
		return nil, Status{Source: m.src, Tag: m.tag},
			&PayloadTypeError{Src: m.src, Tag: m.tag, Got: payloadKind(m), Want: "[]float64"}
	}
	c.countP2PF64(&c.stats.RecvMsgs, &c.stats.RecvBytes, "par.recv.msgs", "par.recv.bytes", len(v))
	return v, Status{Source: m.src, Tag: m.tag}, nil
}
