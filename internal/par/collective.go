package par

import "fmt"

// Op is a reduction operator over float64.
type Op func(a, b float64) float64

// Built-in reduction operators.
var (
	OpSum Op = func(a, b float64) float64 { return a + b }
	OpMax Op = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin Op = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Bcast distributes root's value to all ranks and returns it.
func Bcast[T any](c *Comm, root int, v T) T {
	if c.rank == root {
		c.countCollective("bcast", any(v))
	} else {
		c.countCollective("bcast", nil)
	}
	all := c.exchange(any(v))
	out, ok := all[root].(T)
	if !ok {
		panic(fmt.Sprintf("par: Bcast type mismatch at root %d: %T", root, all[root]))
	}
	return out
}

// Allreduce reduces one float64 per rank with op and returns the result on
// every rank. Reduction order is fixed by rank, so results are deterministic.
func (c *Comm) Allreduce(v float64, op Op) float64 {
	c.countCollective("allreduce", v)
	all := c.exchange(v)
	acc := all[0].(float64)
	for _, x := range all[1:] {
		acc = op(acc, x.(float64))
	}
	return acc
}

// AllreduceSlice element-wise reduces equal-length slices across ranks.
// The returned slice is freshly allocated on every rank.
func (c *Comm) AllreduceSlice(v []float64, op Op) []float64 {
	c.countCollective("allreduce", v)
	all := c.exchange(v)
	first := all[0].([]float64)
	out := make([]float64, len(first))
	copy(out, first)
	for r := 1; r < len(all); r++ {
		x := all[r].([]float64)
		if len(x) != len(out) {
			panic(fmt.Sprintf("par: AllreduceSlice length mismatch: rank 0 has %d, rank %d has %d", len(out), r, len(x)))
		}
		for i := range out {
			out[i] = op(out[i], x[i])
		}
	}
	return out
}

// AllreduceInt reduces one int per rank with integer addition.
func (c *Comm) AllreduceInt(v int) int {
	c.countCollective("allreduce", v)
	all := c.exchange(v)
	sum := 0
	for _, x := range all {
		sum += x.(int)
	}
	return sum
}

// Gather collects one value per rank at root; non-root ranks receive nil.
func Gather[T any](c *Comm, root int, v T) []T {
	c.countCollective("gather", any(v))
	all := c.exchange(any(v))
	if c.rank != root {
		return nil
	}
	out := make([]T, len(all))
	for i, x := range all {
		out[i] = x.(T)
	}
	return out
}

// Allgather collects one value per rank on every rank, ordered by rank.
func Allgather[T any](c *Comm, v T) []T {
	c.countCollective("allgather", any(v))
	all := c.exchange(any(v))
	out := make([]T, len(all))
	for i, x := range all {
		out[i] = x.(T)
	}
	return out
}

// Scatter distributes vals[i] from root to rank i. Only root's vals are
// consulted; it must have exactly Size elements.
func Scatter[T any](c *Comm, root int, vals []T) T {
	var payload any
	if c.rank == root {
		if len(vals) != c.state.size {
			panic(fmt.Sprintf("par: Scatter needs %d values, got %d", c.state.size, len(vals)))
		}
		payload = vals
	}
	c.countCollective("scatter", payload)
	all := c.exchange(payload)
	rv := all[root].([]T)
	return rv[c.rank]
}

// Alltoall sends send[i] to rank i and returns the values received from each
// rank, ordered by source rank. send must have Size elements.
func Alltoall[T any](c *Comm, send []T) []T {
	if len(send) != c.state.size {
		panic(fmt.Sprintf("par: Alltoall needs %d values, got %d", c.state.size, len(send)))
	}
	c.countCollective("alltoall", any(send))
	all := c.exchange(any(send))
	out := make([]T, c.state.size)
	for src, x := range all {
		out[src] = x.([]T)[c.rank]
	}
	return out
}

// AlltoallvF64 exchanges variable-length float64 blocks: send[i] goes to
// rank i. The returned slice holds, per source rank, the block that rank
// sent here. This is the communication core of the coupler's baseline
// rearranger (§5.2.4).
func (c *Comm) AlltoallvF64(send [][]float64) [][]float64 {
	return Alltoall(c, send)
}

// ExclusiveScanInt returns the exclusive prefix sum of v across ranks:
// rank r receives sum of values from ranks 0..r-1 (0 on rank 0). Used for
// global offset computation in I/O and GSMap construction.
func (c *Comm) ExclusiveScanInt(v int) int {
	c.countCollective("scan", v)
	all := c.exchange(v)
	sum := 0
	for r := 0; r < c.rank; r++ {
		sum += all[r].(int)
	}
	return sum
}
