package par

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

// The headline stall property: a receive whose message never comes must
// expire with a who-waits diagnostic, never deadlock.
func TestRecvTimeoutFiresOnStall(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() != 0 {
			return // rank 1 is the dead rank: it never sends
		}
		_, _, err := RecvTimeout[[]float64](c, 1, 7, 50*time.Millisecond)
		var te *TimeoutError
		if !errors.As(err, &te) {
			t.Fatalf("stalled receive returned %v", err)
		}
		if te.Rank != 0 || te.Waited != 50*time.Millisecond {
			t.Errorf("timeout detail %+v", te)
		}
		if !strings.Contains(te.WhoWaits, "rank 0: RecvTimeout(src=1, tag=7)") {
			t.Errorf("diagnostic %q does not name the blocked rank", te.WhoWaits)
		}
	})
}

func TestRecvTimeoutDeliversLateMessage(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 1 {
			time.Sleep(20 * time.Millisecond)
			Send(c, 0, 3, []float64{1, 2, 3})
			return
		}
		v, st, err := RecvTimeout[[]float64](c, 1, 3, 2*time.Second)
		if err != nil {
			t.Fatalf("in-deadline message lost: %v", err)
		}
		if st.Source != 1 || len(v) != 3 {
			t.Errorf("got %v from %+v", v, st)
		}
	})
}

// TestRecvTimeoutPayloadMismatch injects wrong payload kinds across a 2-rank
// communicator: RecvTimeout must return the typed *PayloadTypeError — with
// src, tag, and got/want kinds — instead of dying on a bare type assertion.
func TestRecvTimeoutPayloadMismatch(t *testing.T) {
	Run(2, func(c *Comm) {
		switch c.Rank() {
		case 0:
			// A string where the peer expects []float64, an int where it
			// expects string, and a typed f64 send read as the wrong type.
			Send(c, 1, 41, "not a field")
			Send(c, 1, 42, 12345)
			SendF64(c, 1, 43, []float64{1, 2})
		case 1:
			var pt *PayloadTypeError
			if _, st, err := RecvTimeout[[]float64](c, 0, 41, time.Second); !errors.As(err, &pt) {
				t.Errorf("RecvTimeout on string payload: err = %v, want *PayloadTypeError", err)
			} else {
				if pt.Src != 0 || pt.Tag != 41 {
					t.Errorf("PayloadTypeError src/tag = %d/%d, want 0/41", pt.Src, pt.Tag)
				}
				if pt.Got != "string" || pt.Want != "[]float64" {
					t.Errorf("PayloadTypeError got/want = %q/%q", pt.Got, pt.Want)
				}
				if st.Source != 0 || st.Tag != 41 {
					t.Errorf("status = %+v", st)
				}
			}
			if _, _, err := RecvTimeout[string](c, 0, 42, time.Second); !errors.As(err, &pt) {
				t.Errorf("RecvTimeout on int payload: err = %v, want *PayloadTypeError", err)
			} else if pt.Got != "int" || pt.Want != "string" {
				t.Errorf("PayloadTypeError got/want = %q/%q", pt.Got, pt.Want)
			}
			// The f64 fast-path message boxes through the generic slow path,
			// so the right type still succeeds after the mismatches above.
			if v, _, err := RecvTimeout[[]float64](c, 0, 43, time.Second); err != nil || len(v) != 2 {
				t.Errorf("RecvTimeout on boxed f64 payload = %v, %v", v, err)
			}
		}
	})
}

// An injected send stall (lost message) is caught by the receive deadline,
// and the diagnostic shows every rank blocked at expiry.
func TestInjectedStallDetected(t *testing.T) {
	plan, err := fault.New(1, fault.Injection{Kind: fault.Stall, Site: "par.send", Hit: 1, Rank: 1})
	if err != nil {
		t.Fatal(err)
	}
	fault.Arm(plan)
	defer fault.Disarm()
	Run(2, func(c *Comm) {
		if c.Rank() == 1 {
			Send(c, 0, 9, []float64{4, 5}) // dropped by the armed plan
			Recv[bool](c, 0, 10)           // wait for rank 0 to observe the loss
			Send(c, 0, 9, []float64{6, 7}) // the retry goes through
			return
		}
		// The message was lost in flight: the deadline fires; a retry sent
		// after detection is still receivable.
		_, _, err := RecvTimeout[[]float64](c, 1, 9, 40*time.Millisecond)
		var te *TimeoutError
		if !errors.As(err, &te) {
			t.Fatalf("lost message not detected: %v", err)
		}
		Send(c, 1, 10, true)
		v, _, err := RecvTimeout[[]float64](c, 1, 9, 2*time.Second)
		if err != nil || v[0] != 6 {
			t.Fatalf("retry lost: %v %v", v, err)
		}
	})
	if c := plan.Counts(); c[fault.Stall] != 1 {
		t.Errorf("stall fired %d times", c[fault.Stall])
	}
}

func TestBarrierTimeout(t *testing.T) {
	Run(3, func(c *Comm) {
		switch c.Rank() {
		case 2:
			// The straggler never arrives.
		default:
			err := c.BarrierTimeout(40 * time.Millisecond)
			var te *TimeoutError
			if !errors.As(err, &te) {
				t.Fatalf("rank %d: abandoned barrier returned %v", c.Rank(), err)
			}
			if !strings.Contains(te.WhoWaits, "BarrierTimeout") {
				t.Errorf("diagnostic %q", te.WhoWaits)
			}
		}
	})
}

func TestBarrierTimeoutCompletes(t *testing.T) {
	Run(4, func(c *Comm) {
		time.Sleep(time.Duration(c.Rank()) * 5 * time.Millisecond)
		if err := c.BarrierTimeout(5 * time.Second); err != nil {
			t.Errorf("rank %d: %v", c.Rank(), err)
		}
		// The synchronization still works as a barrier afterwards.
		c.Barrier()
	})
}

type timeoutObs struct{ counts map[string]int64 }

func (o *timeoutObs) AddCount(name string, d int64) { o.counts[name] += d }

func TestTimeoutCounters(t *testing.T) {
	o := &timeoutObs{counts: make(map[string]int64)}
	Run(1, func(c *Comm) {
		c.SetObserver(o)
		RecvTimeout[int](c, 0, 1, time.Millisecond)
	})
	if o.counts["par.timeout.recv"] != 1 || o.counts["par.timeout.total"] != 1 {
		t.Errorf("counters %v", o.counts)
	}
}

// A member world's timeouts carry the member label: in the error struct, in
// its message, and as a labeled counter series next to the plain one.
func TestTimeoutMemberAttribution(t *testing.T) {
	o := &timeoutObs{counts: make(map[string]int64)}
	RunNamed(2, "m03", func(c *Comm) {
		if c.Member() != "m03" {
			t.Errorf("Member() = %q inside RunNamed world", c.Member())
		}
		if c.Rank() != 0 {
			return
		}
		c.SetObserver(o)
		_, _, err := RecvTimeout[int](c, 1, 4, 10*time.Millisecond)
		var te *TimeoutError
		if !errors.As(err, &te) {
			t.Fatalf("got %v", err)
		}
		if te.Member != "m03" {
			t.Errorf("TimeoutError.Member = %q, want m03", te.Member)
		}
		if !strings.Contains(te.Error(), "member m03") || !strings.Contains(te.Error(), "world[m03]") {
			t.Errorf("message %q does not attribute the member", te.Error())
		}
	})
	if o.counts[`par.timeout.recv{member="m03"}`] != 1 || o.counts["par.timeout.recv"] != 1 {
		t.Errorf("labeled timeout counters %v", o.counts)
	}
}

// Sub-communicators produced by Split inherit the member world's label.
func TestSplitInheritsMember(t *testing.T) {
	RunNamed(4, "m11", func(c *Comm) {
		sub := c.Split(c.Rank()%2, c.Rank())
		if sub.Member() != "m11" {
			t.Errorf("split communicator lost the member label: %q", sub.Member())
		}
	})
}
