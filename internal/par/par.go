// Package par is an in-process message-passing runtime that substitutes for
// MPI in this reproduction. Ranks are goroutines sharing a World; each World
// provides communicators with point-to-point messaging (blocking and
// nonblocking), collectives, and topology helpers.
//
// Semantics follow MPI where it matters to the ported code:
//
//   - messages between a (source, destination, tag) triple are delivered in
//     FIFO order;
//   - sends are buffered (they never block waiting for a matching receive),
//     which corresponds to MPI_Bsend and is how the coupler and halo code in
//     the original models are written;
//   - collectives synchronize all ranks of the communicator.
//
// The runtime is deliberately simple: it exists so that the coupler,
// rearranger, halo-exchange, and I/O-aggregation code in this repository is
// structured exactly like the MPI code in the paper's models, and so the
// communication-pattern experiments (alltoall vs nonblocking point-to-point,
// §5.2.4) measure real message traffic.
package par

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/precision"
)

// AnyTag matches any message tag in Recv.
const AnyTag = -1

// AnySource matches any source rank in Recv.
const AnySource = -1

type message struct {
	src  int
	tag  int
	data any
	// f64 is the boxing-free payload slot used by SendF64/RecvF64: storing
	// the slice in a typed field instead of `any` keeps the halo-exchange
	// hot path free of the interface-conversion allocation.
	f64 []float64
	// gs is the boxing-free slot for group-scaled compressed payloads
	// (SendGS/RecvGS) — the WireGS32 format's counterpart of f64.
	gs *precision.GroupScaled
}

// mailbox holds undelivered messages for one rank of one communicator.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, m)
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// take removes and returns the first message matching (src, tag),
// blocking until one arrives.
func (mb *mailbox) take(src, tag int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.queue {
			if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return m
			}
		}
		mb.cond.Wait()
	}
}

// takeTimeout is take with a deadline; ok reports whether a matching message
// arrived in time. The deadline wakeup rides the same condition variable as
// deliveries, so the cost is one timer per wait iteration and nothing on the
// delivery path.
func (mb *mailbox) takeTimeout(src, tag int, d time.Duration) (message, bool) {
	deadline := time.Now().Add(d)
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.queue {
			if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return m, true
			}
		}
		rem := time.Until(deadline)
		if rem <= 0 {
			return message{}, false
		}
		t := time.AfterFunc(rem, func() {
			mb.mu.Lock()
			mb.cond.Broadcast()
			mb.mu.Unlock()
		})
		mb.cond.Wait()
		t.Stop()
	}
}

// tryTake is the non-blocking variant of take; ok reports whether a matching
// message was found.
func (mb *mailbox) tryTake(src, tag int) (message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i, m := range mb.queue {
		if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
			mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
			return m, true
		}
	}
	return message{}, false
}

// commState is the shared state of one communicator: mailboxes for every
// member rank plus reusable synchronization structures for collectives.
type commState struct {
	size  int
	boxes []*mailbox

	// barrier
	bmu   sync.Mutex
	bcond *sync.Cond
	bcnt  int
	bgen  int

	// shared scratch for collectives: one slot per rank, reset by generation.
	smu   sync.Mutex
	scond *sync.Cond
	slots []any
	sdone int
	sgen  int

	// communicator id, used to derive deterministic split ids.
	id      string
	splitMu sync.Mutex
	splits  map[string]*commState
	gathers map[string]*splitGather

	// who-waits registry: every blocking operation announces itself here so
	// a timed-out rank can dump which ranks wait on whom instead of leaving
	// a silent deadlock (the stall-detection diagnostic).
	wmu     sync.Mutex
	waiting map[int]string

	// member is the ensemble member label this world runs for ("" outside
	// an ensemble): it scopes the fault-injection sites to the member's
	// plan and attributes timeout blame dumps and counters to the member.
	member string
}

func (cs *commState) setWaiting(rank int, desc string) {
	cs.wmu.Lock()
	cs.waiting[rank] = desc
	cs.wmu.Unlock()
}

func (cs *commState) clearWaiting(rank int) {
	cs.wmu.Lock()
	delete(cs.waiting, rank)
	cs.wmu.Unlock()
}

// WhoWaits formats the communicator's blocked ranks, one "rank N: op" line
// per waiter, sorted by rank — the diagnostic attached to TimeoutError.
func (cs *commState) whoWaits() string {
	cs.wmu.Lock()
	ranks := make([]int, 0, len(cs.waiting))
	for r := range cs.waiting {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	lines := make([]string, 0, len(ranks))
	for _, r := range ranks {
		lines = append(lines, fmt.Sprintf("rank %d: %s", r, cs.waiting[r]))
	}
	cs.wmu.Unlock()
	if len(lines) == 0 {
		return "no ranks blocked on " + cs.id
	}
	out := lines[0]
	for _, l := range lines[1:] {
		out += "; " + l
	}
	return out
}

func newCommState(size int, id string) *commState {
	cs := &commState{
		size:    size,
		boxes:   make([]*mailbox, size),
		slots:   make([]any, size),
		id:      id,
		splits:  make(map[string]*commState),
		gathers: make(map[string]*splitGather),
		waiting: make(map[int]string),
	}
	for i := range cs.boxes {
		cs.boxes[i] = newMailbox()
	}
	cs.bcond = sync.NewCond(&cs.bmu)
	cs.scond = sync.NewCond(&cs.smu)
	return cs
}

// Comm is one rank's handle onto a communicator.
type Comm struct {
	state *commState
	rank  int
	stats *CommStats
	obs   Observer
}

// Rank returns the calling rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.state.size }

// Member returns the ensemble member label of the world this communicator
// belongs to ("" outside a RunNamed world).
func (c *Comm) Member() string { return c.state.member }

// Run launches n ranks, each executing body with its world communicator, and
// waits for all of them to finish. Panics in a rank are re-raised in the
// caller so test failures surface.
func Run(n int, body func(c *Comm)) { RunNamed(n, "", body) }

// RunNamed is Run for a named member world: the ensemble orchestrator runs
// each member attempt in its own world tagged with the member's label, which
// (1) scopes the fault-injection sites inside the world to the member's
// ArmScoped plan, (2) stamps TimeoutError blame dumps with the member, and
// (3) names the communicator "world[<name>]" so who-waits diagnostics
// identify the member. An empty name degenerates to Run exactly.
func RunNamed(n int, name string, body func(c *Comm)) {
	if n <= 0 {
		panic(fmt.Sprintf("par: Run with non-positive size %d", n))
	}
	id := "world"
	if name != "" {
		id = "world[" + name + "]"
	}
	cs := newCommState(n, id)
	cs.member = name
	var wg sync.WaitGroup
	panics := make([]any, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[rank] = p
				}
			}()
			body(&Comm{state: cs, rank: rank, stats: &CommStats{}})
		}(r)
	}
	wg.Wait()
	for r, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("par: rank %d panicked: %v", r, p))
		}
	}
}

// Send delivers data to rank dst with the given tag. Sends are buffered and
// never block. The payload is shared by reference, matching the zero-copy
// behaviour of intra-node MPI; callers that reuse buffers must copy first,
// exactly as with MPI_Isend ownership rules.
func Send[T any](c *Comm, dst int, tag int, data T) {
	if dst < 0 || dst >= c.state.size {
		panic(fmt.Sprintf("par: Send to invalid rank %d (size %d)", dst, c.state.size))
	}
	c.countSend(data)
	if f := fault.PointScoped(c.state.member, "par.send", c.rank); f != nil && f.Kind == fault.Stall {
		// The message is lost in flight — the interconnect failure whose only
		// remedy on the receiving side is a deadline (RecvTimeout).
		f.Sleep()
		if c.obs != nil {
			c.obs.AddCount("par.send.dropped", 1)
		}
		return
	}
	c.state.boxes[dst].put(message{src: c.rank, tag: tag, data: data})
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. src may be AnySource and tag may be AnyTag.
func Recv[T any](c *Comm, src int, tag int) (T, Status) {
	c.state.setWaiting(c.rank, fmt.Sprintf("Recv(src=%d, tag=%d)", src, tag))
	m := c.state.boxes[c.rank].take(src, tag)
	c.state.clearWaiting(c.rank)
	if m.data == nil && m.f64 != nil {
		// A SendF64 message read through the generic path: box it here, on
		// the slow path, so the typed fast path never pays for it.
		m.data = m.f64
	}
	if m.data == nil && m.gs != nil {
		// Likewise for a SendGS message read through the generic path.
		m.data = m.gs
	}
	c.countRecv(m.data)
	v, ok := m.data.(T)
	if !ok {
		panic(fmt.Sprintf("par: Recv type mismatch from rank %d tag %d: got %T", m.src, m.tag, m.data))
	}
	return v, Status{Source: m.src, Tag: m.tag}
}

// SendF64 is Send specialized to []float64 payloads with no interface
// boxing: the slice lands in the message's typed field, so a steady-state
// halo exchange over persistent buffers performs zero allocations. The
// payload is shared by reference, exactly like Send.
func SendF64(c *Comm, dst int, tag int, data []float64) {
	if dst < 0 || dst >= c.state.size {
		panic(fmt.Sprintf("par: SendF64 to invalid rank %d (size %d)", dst, c.state.size))
	}
	c.countP2PF64(&c.stats.SendMsgs, &c.stats.SendBytes, "par.send.msgs", "par.send.bytes", len(data))
	if f := fault.PointScoped(c.state.member, "par.send", c.rank); f != nil && f.Kind == fault.Stall {
		f.Sleep()
		if c.obs != nil {
			c.obs.AddCount("par.send.dropped", 1)
		}
		return
	}
	c.state.boxes[dst].put(message{src: c.rank, tag: tag, f64: data})
}

// RecvF64 is Recv specialized to []float64 payloads sent with SendF64: no
// boxing, no per-call formatting, zero allocations on the receive path. It
// also accepts a plain Send of a []float64. A payload of any other kind
// panics with the typed *PayloadTypeError; wire-decode paths use RecvF64E
// to get the error returned instead.
func RecvF64(c *Comm, src int, tag int) ([]float64, Status) {
	v, st, err := RecvF64E(c, src, tag)
	if err != nil {
		panic(err)
	}
	return v, st
}

// Status describes a received message.
type Status struct {
	Source int
	Tag    int
}

// Probe reports whether a message matching (src, tag) is waiting, without
// consuming it.
func (c *Comm) Probe(src, tag int) (Status, bool) {
	mb := c.state.boxes[c.rank]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for _, m := range mb.queue {
		if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
			return Status{Source: m.src, Tag: m.tag}, true
		}
	}
	return Status{}, false
}

// Barrier blocks until all ranks of the communicator have entered it.
func (c *Comm) Barrier() {
	c.stats.Barriers.Add(1)
	cs := c.state
	cs.setWaiting(c.rank, "Barrier")
	defer cs.clearWaiting(c.rank)
	cs.bmu.Lock()
	gen := cs.bgen
	cs.bcnt++
	if cs.bcnt == cs.size {
		cs.bcnt = 0
		cs.bgen++
		cs.bcond.Broadcast()
		cs.bmu.Unlock()
		return
	}
	for gen == cs.bgen {
		cs.bcond.Wait()
	}
	cs.bmu.Unlock()
}

// exchange places v in the calling rank's slot, waits for all ranks, and
// returns a snapshot of every rank's contribution. It is the shared-memory
// primitive under the collectives.
func (c *Comm) exchange(v any) []any {
	cs := c.state
	cs.setWaiting(c.rank, "collective exchange")
	defer cs.clearWaiting(c.rank)
	cs.smu.Lock()
	gen := cs.sgen
	cs.slots[c.rank] = v
	cs.sdone++
	if cs.sdone == cs.size {
		cs.sdone = 0
		cs.sgen++
		cs.scond.Broadcast()
	} else {
		for gen == cs.sgen {
			cs.scond.Wait()
		}
	}
	out := make([]any, cs.size)
	copy(out, cs.slots)
	cs.smu.Unlock()
	c.Barrier() // ensure slots are not overwritten by a subsequent collective
	return out
}

// splitGather coordinates a Split call across ranks.
type splitGather struct {
	mu      sync.Mutex
	cond    *sync.Cond
	entries []splitEntry
	done    int
	ready   bool
	result  map[int]*commState  // color -> state
	ranks   map[int]map[int]int // color -> old rank -> new rank
}

type splitEntry struct {
	rank  int
	color int
	key   int
}

// Split partitions the communicator by color; within a color, ranks are
// ordered by key (ties broken by old rank), mirroring MPI_Comm_split.
// Ranks passing a negative color receive a nil communicator.
func (c *Comm) Split(color, key int) *Comm {
	cs := c.state
	gid := fmt.Sprintf("split-%d", key) // key participates only in ordering
	_ = gid
	cs.splitMu.Lock()
	g, ok := cs.gathers["split"]
	if !ok {
		g = &splitGather{}
		g.cond = sync.NewCond(&g.mu)
		cs.gathers["split"] = g
	}
	cs.splitMu.Unlock()

	g.mu.Lock()
	g.entries = append(g.entries, splitEntry{rank: c.rank, color: color, key: key})
	g.done++
	if g.done == cs.size {
		// Last rank in: build all the sub-communicators.
		byColor := make(map[int][]splitEntry)
		for _, e := range g.entries {
			if e.color >= 0 {
				byColor[e.color] = append(byColor[e.color], e)
			}
		}
		g.result = make(map[int]*commState)
		g.ranks = make(map[int]map[int]int)
		for color, es := range byColor {
			sort.Slice(es, func(i, j int) bool {
				if es[i].key != es[j].key {
					return es[i].key < es[j].key
				}
				return es[i].rank < es[j].rank
			})
			st := newCommState(len(es), fmt.Sprintf("%s/split%d", cs.id, color))
			st.member = cs.member
			g.result[color] = st
			m := make(map[int]int, len(es))
			for newRank, e := range es {
				m[e.rank] = newRank
			}
			g.ranks[color] = m
		}
		g.ready = true
		g.cond.Broadcast()
	} else {
		for !g.ready {
			g.cond.Wait()
		}
	}
	var out *Comm
	if color >= 0 {
		// The product communicator carries fresh counters and inherits the
		// parent's observer.
		out = &Comm{state: g.result[color], rank: g.ranks[color][c.rank], stats: &CommStats{}, obs: c.obs}
	}
	g.done--
	if g.done == 0 {
		// Reset for the next Split on this communicator.
		g.entries = nil
		g.ready = false
		g.result = nil
		g.ranks = nil
	}
	g.mu.Unlock()
	c.Barrier()
	return out
}
