package par

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestRunLaunchesAllRanks(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	Run(7, func(c *Comm) {
		mu.Lock()
		seen[c.Rank()] = true
		mu.Unlock()
		if c.Size() != 7 {
			t.Errorf("size = %d, want 7", c.Size())
		}
	})
	if len(seen) != 7 {
		t.Fatalf("saw %d ranks, want 7", len(seen))
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 42, []float64{1, 2, 3})
		} else {
			v, st := Recv[[]float64](c, 0, 42)
			if st.Source != 0 || st.Tag != 42 {
				t.Errorf("status = %+v", st)
			}
			if !reflect.DeepEqual(v, []float64{1, 2, 3}) {
				t.Errorf("payload = %v", v)
			}
		}
	})
}

func TestFIFOOrderingPerPair(t *testing.T) {
	const n = 100
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				Send(c, 1, 7, i)
			}
		} else {
			for i := 0; i < n; i++ {
				v, _ := Recv[int](c, 0, 7)
				if v != i {
					t.Errorf("message %d arrived out of order: got %d", i, v)
				}
			}
		}
	})
}

func TestTagSelectivity(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 1, "first")
			Send(c, 1, 2, "second")
		} else {
			// Receive in reverse tag order: tags must select, not FIFO.
			v2, _ := Recv[string](c, 0, 2)
			v1, _ := Recv[string](c, 0, 1)
			if v1 != "first" || v2 != "second" {
				t.Errorf("got %q, %q", v1, v2)
			}
		}
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	Run(4, func(c *Comm) {
		if c.Rank() != 0 {
			Send(c, 0, c.Rank(), c.Rank()*10)
		} else {
			got := map[int]int{}
			for i := 0; i < 3; i++ {
				v, st := Recv[int](c, AnySource, AnyTag)
				got[st.Source] = v
			}
			for r := 1; r < 4; r++ {
				if got[r] != r*10 {
					t.Errorf("from rank %d got %d, want %d", r, got[r], r*10)
				}
			}
		}
	})
}

func TestProbe(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 5, 99)
			Send(c, 1, 6, 0) // release message
		} else {
			// Wait until something with tag 5 is queued.
			for {
				if st, ok := c.Probe(0, 5); ok {
					if st.Tag != 5 {
						t.Errorf("probe tag = %d", st.Tag)
					}
					break
				}
			}
			v, _ := Recv[int](c, 0, 5)
			if v != 99 {
				t.Errorf("got %d", v)
			}
			Recv[int](c, 0, 6)
		}
	})
}

func TestBarrierReusable(t *testing.T) {
	const rounds = 50
	var counter int64
	var mu sync.Mutex
	Run(8, func(c *Comm) {
		for i := 0; i < rounds; i++ {
			mu.Lock()
			counter++
			mu.Unlock()
			c.Barrier()
			mu.Lock()
			v := counter
			mu.Unlock()
			if v < int64((i+1)*8) {
				t.Errorf("barrier round %d: counter %d < %d", i, v, (i+1)*8)
			}
			c.Barrier()
		}
	})
}

func TestBcast(t *testing.T) {
	Run(5, func(c *Comm) {
		v := -1
		if c.Rank() == 2 {
			v = 1234
		}
		got := Bcast(c, 2, v)
		if got != 1234 {
			t.Errorf("rank %d got %d", c.Rank(), got)
		}
	})
}

func TestAllreduce(t *testing.T) {
	Run(6, func(c *Comm) {
		sum := c.Allreduce(float64(c.Rank()+1), OpSum)
		if sum != 21 {
			t.Errorf("sum = %v, want 21", sum)
		}
		max := c.Allreduce(float64(c.Rank()), OpMax)
		if max != 5 {
			t.Errorf("max = %v, want 5", max)
		}
		min := c.Allreduce(float64(c.Rank()), OpMin)
		if min != 0 {
			t.Errorf("min = %v, want 0", min)
		}
	})
}

func TestAllreduceSlice(t *testing.T) {
	Run(4, func(c *Comm) {
		v := []float64{float64(c.Rank()), 1}
		got := c.AllreduceSlice(v, OpSum)
		if got[0] != 6 || got[1] != 4 {
			t.Errorf("got %v", got)
		}
		// Input must be unmodified.
		if v[0] != float64(c.Rank()) {
			t.Errorf("input mutated: %v", v)
		}
	})
}

func TestGatherScatter(t *testing.T) {
	Run(4, func(c *Comm) {
		g := Gather(c, 0, c.Rank()*c.Rank())
		if c.Rank() == 0 {
			if !reflect.DeepEqual(g, []int{0, 1, 4, 9}) {
				t.Errorf("gather = %v", g)
			}
		} else if g != nil {
			t.Errorf("non-root gather = %v", g)
		}
		var vals []int
		if c.Rank() == 1 {
			vals = []int{10, 11, 12, 13}
		}
		got := Scatter(c, 1, vals)
		if got != 10+c.Rank() {
			t.Errorf("scatter rank %d got %d", c.Rank(), got)
		}
	})
}

func TestAllgather(t *testing.T) {
	Run(3, func(c *Comm) {
		got := Allgather(c, c.Rank()+100)
		if !reflect.DeepEqual(got, []int{100, 101, 102}) {
			t.Errorf("got %v", got)
		}
	})
}

func TestAlltoall(t *testing.T) {
	Run(3, func(c *Comm) {
		send := make([]int, 3)
		for d := range send {
			send[d] = c.Rank()*10 + d
		}
		got := Alltoall(c, send)
		for s, v := range got {
			if v != s*10+c.Rank() {
				t.Errorf("from %d got %d, want %d", s, v, s*10+c.Rank())
			}
		}
	})
}

func TestAlltoallvF64(t *testing.T) {
	Run(4, func(c *Comm) {
		send := make([][]float64, 4)
		for d := range send {
			// Variable lengths: rank r sends d+1 values to rank d.
			blk := make([]float64, d+1)
			for i := range blk {
				blk[i] = float64(c.Rank()*100 + d*10 + i)
			}
			send[d] = blk
		}
		got := c.AlltoallvF64(send)
		for s, blk := range got {
			if len(blk) != c.Rank()+1 {
				t.Fatalf("from %d got len %d, want %d", s, len(blk), c.Rank()+1)
			}
			for i, v := range blk {
				want := float64(s*100 + c.Rank()*10 + i)
				if v != want {
					t.Errorf("from %d [%d] = %v, want %v", s, i, v, want)
				}
			}
		}
	})
}

func TestExclusiveScanInt(t *testing.T) {
	Run(5, func(c *Comm) {
		got := c.ExclusiveScanInt(c.Rank() + 1)
		want := 0
		for r := 0; r < c.Rank(); r++ {
			want += r + 1
		}
		if got != want {
			t.Errorf("rank %d scan = %d, want %d", c.Rank(), got, want)
		}
	})
}

func TestIsendIrecvWaitall(t *testing.T) {
	Run(4, func(c *Comm) {
		n := c.Size()
		reqs := make([]*Request, 0, 2*n)
		recvs := make([]*Request, n)
		for d := 0; d < n; d++ {
			if d == c.Rank() {
				continue
			}
			reqs = append(reqs, Isend(c, d, 3, []float64{float64(c.Rank())}))
			r := Irecv[[]float64](c, d, 3)
			recvs[d] = r
			reqs = append(reqs, r)
		}
		WaitAll(reqs)
		for d := 0; d < n; d++ {
			if d == c.Rank() {
				continue
			}
			v := recvs[d].Data().([]float64)
			if v[0] != float64(d) {
				t.Errorf("from %d got %v", d, v)
			}
		}
	})
}

func TestRequestTest(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			r := Irecv[int](c, 1, 9)
			// Eventually completes after rank 1 sends.
			for !r.Test() {
			}
			if r.Data().(int) != 77 {
				t.Errorf("got %v", r.Data())
			}
		} else {
			Send(c, 0, 9, 77)
		}
	})
}

func TestSplitByParity(t *testing.T) {
	Run(6, func(c *Comm) {
		sub := c.Split(c.Rank()%2, c.Rank())
		if sub.Size() != 3 {
			t.Errorf("sub size = %d", sub.Size())
		}
		if sub.Rank() != c.Rank()/2 {
			t.Errorf("rank %d -> sub rank %d, want %d", c.Rank(), sub.Rank(), c.Rank()/2)
		}
		// The sub-communicator must be functional and isolated.
		sum := sub.Allreduce(1, OpSum)
		if sum != 3 {
			t.Errorf("sub allreduce = %v", sum)
		}
	})
}

func TestSplitKeyOrdering(t *testing.T) {
	Run(4, func(c *Comm) {
		// Reverse ordering by key: old rank 3 becomes new rank 0.
		sub := c.Split(0, -c.Rank())
		if sub.Rank() != 3-c.Rank() {
			t.Errorf("old %d new %d, want %d", c.Rank(), sub.Rank(), 3-c.Rank())
		}
	})
}

func TestSplitNegativeColorExcluded(t *testing.T) {
	Run(4, func(c *Comm) {
		color := 0
		if c.Rank() == 3 {
			color = -1
		}
		sub := c.Split(color, c.Rank())
		if c.Rank() == 3 {
			if sub != nil {
				t.Error("excluded rank got a communicator")
			}
			return
		}
		if sub.Size() != 3 {
			t.Errorf("sub size = %d", sub.Size())
		}
	})
}

func TestSplitRepeatedly(t *testing.T) {
	Run(4, func(c *Comm) {
		for i := 0; i < 10; i++ {
			sub := c.Split(c.Rank()/2, c.Rank())
			if sub.Size() != 2 {
				t.Fatalf("round %d: size %d", i, sub.Size())
			}
		}
	})
}

func TestCartTopology(t *testing.T) {
	Run(6, func(c *Comm) {
		ct := NewCart(c, 3, 2, true, false)
		if ct.CX != c.Rank()%3 || ct.CY != c.Rank()/3 {
			t.Errorf("coords (%d,%d)", ct.CX, ct.CY)
		}
		w, e, s, n := ct.Neighbors()
		// Periodic in x:
		if w != ct.CY*3+(ct.CX+2)%3 || e != ct.CY*3+(ct.CX+1)%3 {
			t.Errorf("w,e = %d,%d", w, e)
		}
		// Non-periodic in y:
		if ct.CY == 0 && s != -1 {
			t.Errorf("south = %d at bottom row", s)
		}
		if ct.CY == 1 && n != -1 {
			t.Errorf("north = %d at top row", n)
		}
	})
}

func TestCartShift(t *testing.T) {
	Run(4, func(c *Comm) {
		ct := NewCart(c, 4, 1, true, false)
		src, dst := ct.Shift(0, 1)
		if src != (c.Rank()+3)%4 || dst != (c.Rank()+1)%4 {
			t.Errorf("shift = %d,%d", src, dst)
		}
	})
}

func TestGraphNeighborExchange(t *testing.T) {
	// Ring of 4 with symmetric neighbour lists.
	Run(4, func(c *Comm) {
		left := (c.Rank() + 3) % 4
		right := (c.Rank() + 1) % 4
		g := NewGraph(c, []int{left, right})
		send := [][]float64{{float64(c.Rank())}, {float64(c.Rank())}}
		got := g.NeighborAlltoallF64(11, send)
		if got[0][0] != float64(left) || got[1][0] != float64(right) {
			t.Errorf("got %v", got)
		}
	})
}

func TestGraphRejectsSelf(t *testing.T) {
	Run(2, func(c *Comm) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for self neighbour")
			}
		}()
		NewGraph(c, []int{c.Rank()})
	})
}

// Property: Alltoall is a transpose — applying it twice with the values
// tagged by (src,dst) recovers the original layout.
func TestAlltoallTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		orig := make([][]int, n)
		ok := true
		Run(n, func(c *Comm) {
			send := make([]int, n)
			for d := range send {
				send[d] = int(seed%1000)*100 + c.Rank()*10 + d
			}
			if c.Rank() == 0 {
				// record is only to keep the compiler honest about orig
				orig[0] = send
			}
			recv := Alltoall(c, send)
			back := Alltoall(c, recv)
			if !reflect.DeepEqual(back, send) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: allreduce(sum) equals the serial sum for random contributions.
func TestAllreduceMatchesSerialSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		vals := make([]float64, n)
		var want float64
		for i := range vals {
			vals[i] = float64(rng.Intn(1000)) // integers: exact fp sum
			want += vals[i]
		}
		ok := true
		Run(n, func(c *Comm) {
			got := c.Allreduce(vals[c.Rank()], OpSum)
			if got != want {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRankPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("panic in a rank did not propagate")
		}
	}()
	Run(3, func(c *Comm) {
		if c.Rank() == 1 {
			panic("boom")
		}
	})
}

func TestSendInvalidRankPanics(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			Send(c, 5, 0, 1)
		}
	})
}

func sortedCopy(v []int) []int {
	out := append([]int(nil), v...)
	sort.Ints(out)
	return out
}

func TestGraphDedupesNeighbors(t *testing.T) {
	Run(3, func(c *Comm) {
		other := (c.Rank() + 1) % 3
		g := NewGraph(c, []int{other, other})
		if len(g.Neighbors) != 1 {
			t.Errorf("neighbours = %v", g.Neighbors)
		}
		_ = sortedCopy(g.Neighbors)
	})
}
