package par

import (
	"errors"
	"math"
	"testing"

	"repro/internal/precision"
)

func TestWireFormatParseAndString(t *testing.T) {
	for _, tc := range []struct {
		s string
		w WireFormat
	}{{"f64", WireF64}, {"gs32", WireGS32}} {
		w, err := ParseWireFormat(tc.s)
		if err != nil || w != tc.w {
			t.Fatalf("ParseWireFormat(%q) = %v, %v", tc.s, w, err)
		}
		if w.String() != tc.s {
			t.Fatalf("String() = %q, want %q", w.String(), tc.s)
		}
	}
	if _, err := ParseWireFormat("fp16"); err == nil {
		t.Fatal("ParseWireFormat accepted an unknown format")
	}
}

func TestSendGSRecvGSRoundTrip(t *testing.T) {
	x := make([]float64, 300)
	for i := range x {
		x[i] = math.Cos(float64(i)) * math.Pow(10, float64(i%20-10))
	}
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			gs, err := precision.EncodeGroupScaled(x, WireGroup)
			if err != nil {
				t.Errorf("encode: %v", err)
				return
			}
			SendGS(c, 1, 11, gs)
		} else {
			gs, st, err := RecvGS(c, 0, 11)
			if err != nil {
				t.Errorf("RecvGS: %v", err)
				return
			}
			if st.Source != 0 || st.Tag != 11 {
				t.Errorf("status = %+v", st)
			}
			got := make([]float64, len(x))
			if err := gs.DecodeInto(got); err != nil {
				t.Errorf("decode: %v", err)
				return
			}
			for i := range got {
				budget := math.Abs(x[i]) * 1.3e-7
				if d := math.Abs(got[i] - x[i]); d > budget {
					t.Errorf("value %d: |%v - %v| = %v exceeds %v", i, got[i], x[i], d, budget)
					return
				}
			}
			if c.Stats().RecvBytes.Load() != int64(gs.Bytes()) {
				t.Errorf("RecvBytes = %d, want compressed size %d", c.Stats().RecvBytes.Load(), gs.Bytes())
			}
		}
	})
}

// TestPayloadTypeMismatch injects the wrong payload kind across a 2-rank
// communicator in both directions and checks the wire-decode receives return
// the typed *PayloadTypeError — with src, tag, and got/want kinds — instead
// of panicking.
func TestPayloadTypeMismatch(t *testing.T) {
	Run(2, func(c *Comm) {
		switch c.Rank() {
		case 0:
			// A raw f64 message where the peer expects group-scaled...
			SendF64(c, 1, 21, []float64{1, 2, 3})
			// ...a group-scaled message where the peer expects raw f64...
			gs, err := precision.EncodeGroupScaled([]float64{4, 5, 6}, 2)
			if err != nil {
				t.Errorf("encode: %v", err)
				return
			}
			SendGS(c, 1, 22, gs)
			// ...and a generic payload of an unrelated type for each receiver.
			Send(c, 1, 23, "not a field")
			Send(c, 1, 24, 12345)
		case 1:
			var pt *PayloadTypeError
			if _, st, err := RecvGS(c, 0, 21); !errors.As(err, &pt) {
				t.Errorf("RecvGS on f64 payload: err = %v, want *PayloadTypeError", err)
			} else {
				if pt.Src != 0 || pt.Tag != 21 {
					t.Errorf("PayloadTypeError src/tag = %d/%d, want 0/21", pt.Src, pt.Tag)
				}
				if pt.Got != "[]float64" || pt.Want != "*precision.GroupScaled" {
					t.Errorf("PayloadTypeError got/want = %q/%q", pt.Got, pt.Want)
				}
				if st.Source != 0 || st.Tag != 21 {
					t.Errorf("status = %+v", st)
				}
			}
			if _, _, err := RecvF64E(c, 0, 22); !errors.As(err, &pt) {
				t.Errorf("RecvF64E on gs payload: err = %v, want *PayloadTypeError", err)
			} else if pt.Got != "*precision.GroupScaled" || pt.Want != "[]float64" {
				t.Errorf("PayloadTypeError got/want = %q/%q", pt.Got, pt.Want)
			}
			if _, _, err := RecvGS(c, 0, 23); !errors.As(err, &pt) {
				t.Errorf("RecvGS on string payload: err = %v, want *PayloadTypeError", err)
			} else if pt.Got != "string" {
				t.Errorf("PayloadTypeError got = %q, want %q", pt.Got, "string")
			}
			if _, _, err := RecvF64E(c, 0, 24); !errors.As(err, &pt) {
				t.Errorf("RecvF64E on int payload: err = %v, want *PayloadTypeError", err)
			} else if pt.Got != "int" {
				t.Errorf("PayloadTypeError got = %q, want %q", pt.Got, "int")
			}
		}
	})
}

// TestRecvF64PanicsWithTypedError pins the historical RecvF64 contract: a
// payload mismatch still panics, but the panic value is now the typed error.
func TestRecvF64PanicsWithTypedError(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 31, "wrong kind")
			return
		}
		defer func() {
			r := recover()
			if r == nil {
				t.Error("RecvF64 on a mismatched payload did not panic")
				return
			}
			err, ok := r.(error)
			var pt *PayloadTypeError
			if !ok || !errors.As(err, &pt) {
				t.Errorf("panic value = %v (%T), want *PayloadTypeError", r, r)
			}
		}()
		RecvF64(c, 0, 31)
	})
}

// TestRecvGenericBoxesGS checks the generic slow path can still read a SendGS
// message (boxing it once, off the typed fast path).
func TestRecvGenericBoxesGS(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			gs, err := precision.EncodeGroupScaled([]float64{7, 8}, 2)
			if err != nil {
				t.Errorf("encode: %v", err)
				return
			}
			SendGS(c, 1, 41, gs)
		} else {
			gs, _ := Recv[*precision.GroupScaled](c, 0, 41)
			out := make([]float64, 2)
			if err := gs.DecodeInto(out); err != nil {
				t.Errorf("decode: %v", err)
			}
		}
	})
}
