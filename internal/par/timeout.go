package par

import (
	"fmt"
	"time"
)

// Deadline support: a lost message (dead rank, dropped packet) must surface
// as an error carrying a who-waits-on-whom diagnostic, not as a silent
// deadlock. RecvTimeout and BarrierTimeout are the deadline-carrying
// variants of the blocking primitives; on expiry they withdraw cleanly,
// snapshot the communicator's blocked ranks, and count the event on the
// observer ("par.timeout.*").

// TimeoutError reports a blocking operation that expired. WhoWaits is the
// communicator-wide stall diagnostic at expiry time; Member is the ensemble
// member label of the world the operation ran in ("" outside an ensemble),
// so fleet telemetry attributes the stall to a member.
type TimeoutError struct {
	Op       string        // the operation that expired, e.g. "Recv(src=1, tag=8200)"
	Comm     string        // communicator id
	Rank     int           // the rank that timed out
	Member   string        // ensemble member label, "" outside a RunNamed world
	Waited   time.Duration // the deadline that elapsed
	WhoWaits string        // blocked ranks at expiry, "rank N: op; ..."
}

func (e *TimeoutError) Error() string {
	if e.Member != "" {
		return fmt.Sprintf("par: %s on rank %d of %s (member %s) timed out after %v [%s]",
			e.Op, e.Rank, e.Comm, e.Member, e.Waited, e.WhoWaits)
	}
	return fmt.Sprintf("par: %s on rank %d of %s timed out after %v [%s]",
		e.Op, e.Rank, e.Comm, e.Waited, e.WhoWaits)
}

func (c *Comm) timeout(op string, d time.Duration, counter string) *TimeoutError {
	member := c.state.member
	if c.obs != nil {
		c.obs.AddCount(counter, 1)
		c.obs.AddCount("par.timeout.total", 1)
		if member != "" {
			// The canonical obs.Labeled form, built locally because par may
			// not import obs (obs reduces across par communicators).
			c.obs.AddCount(counter+`{member="`+member+`"}`, 1)
		}
	}
	return &TimeoutError{
		Op:       op,
		Comm:     c.state.id,
		Rank:     c.rank,
		Member:   member,
		Waited:   d,
		WhoWaits: c.state.whoWaits(),
	}
}

// RecvTimeout is Recv with a deadline: it blocks until a message from src
// with the given tag arrives or d elapses, whichever is first. On expiry the
// returned *TimeoutError carries the who-waits diagnostic; the mailbox is
// left untouched, so a late message remains receivable.
func RecvTimeout[T any](c *Comm, src int, tag int, d time.Duration) (T, Status, error) {
	op := fmt.Sprintf("RecvTimeout(src=%d, tag=%d)", src, tag)
	c.state.setWaiting(c.rank, op)
	m, ok := c.state.boxes[c.rank].takeTimeout(src, tag, d)
	if !ok {
		// Leave the registration in place long enough to appear in our own
		// diagnostic, then withdraw.
		err := c.timeout(op, d, "par.timeout.recv")
		c.state.clearWaiting(c.rank)
		var zero T
		return zero, Status{}, err
	}
	c.state.clearWaiting(c.rank)
	if m.data == nil && m.f64 != nil {
		// A SendF64 message read through the generic path: box it here, on
		// the slow path, so the typed fast path never pays for it.
		m.data = m.f64
	}
	if m.data == nil && m.gs != nil {
		// Likewise for a SendGS message read through the generic path.
		m.data = m.gs
	}
	c.countRecv(m.data)
	v, cast := m.data.(T)
	if !cast {
		// RecvTimeout already has an error return for the deadline path, so a
		// payload mismatch surfaces the same way — the typed *PayloadTypeError
		// the wire-decode receives return — never a rank-killing panic.
		var zero T
		return zero, Status{Source: m.src, Tag: m.tag},
			&PayloadTypeError{Src: m.src, Tag: m.tag, Got: payloadKind(m), Want: fmt.Sprintf("%T", zero)}
	}
	return v, Status{Source: m.src, Tag: m.tag}, nil
}

// BarrierTimeout enters the barrier but gives up after d, withdrawing its
// entry so the barrier generation stays consistent for the ranks still
// inside. A timeout means the collective was abandoned on this rank; the
// caller must treat the whole synchronization as failed (the other ranks
// remain blocked until they time out or the driver tears the world down) —
// the point is a diagnosable error instead of an eternal hang.
func (c *Comm) BarrierTimeout(d time.Duration) error {
	c.stats.Barriers.Add(1)
	cs := c.state
	op := fmt.Sprintf("BarrierTimeout(%v)", d)
	cs.setWaiting(c.rank, op)
	defer cs.clearWaiting(c.rank)
	deadline := time.Now().Add(d)
	cs.bmu.Lock()
	gen := cs.bgen
	cs.bcnt++
	if cs.bcnt == cs.size {
		cs.bcnt = 0
		cs.bgen++
		cs.bcond.Broadcast()
		cs.bmu.Unlock()
		return nil
	}
	for gen == cs.bgen {
		rem := time.Until(deadline)
		if rem <= 0 {
			cs.bcnt-- // withdraw so a later barrier is not satisfied early
			cs.bmu.Unlock()
			return c.timeout(op, d, "par.timeout.barrier")
		}
		t := time.AfterFunc(rem, func() {
			cs.bmu.Lock()
			cs.bcond.Broadcast()
			cs.bmu.Unlock()
		})
		cs.bcond.Wait()
		t.Stop()
	}
	cs.bmu.Unlock()
	return nil
}
