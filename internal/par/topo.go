package par

import "fmt"

// Cart is a 2-D cartesian process topology over a communicator, the
// decomposition used by the ocean, sea-ice, and I/O components.
type Cart struct {
	Comm     *Comm
	NX, NY   int  // process grid extents
	PX, PY   bool // periodicity in x (longitude) and y (latitude)
	CX, CY   int  // this rank's coordinates
	rowMajor bool
}

// NewCart maps the communicator's ranks onto an nx × ny grid in row-major
// order (rank = cy*nx + cx). nx*ny must equal the communicator size.
func NewCart(c *Comm, nx, ny int, periodicX, periodicY bool) *Cart {
	if nx*ny != c.Size() {
		panic(fmt.Sprintf("par: cart %dx%d does not match communicator size %d", nx, ny, c.Size()))
	}
	return &Cart{
		Comm: c, NX: nx, NY: ny,
		PX: periodicX, PY: periodicY,
		CX: c.Rank() % nx, CY: c.Rank() / nx,
		rowMajor: true,
	}
}

// RankAt returns the rank at grid coordinates (cx, cy), applying periodic
// wrap where enabled. It returns -1 for off-grid coordinates in
// non-periodic directions (no neighbour).
func (ct *Cart) RankAt(cx, cy int) int {
	if ct.PX {
		cx = ((cx % ct.NX) + ct.NX) % ct.NX
	} else if cx < 0 || cx >= ct.NX {
		return -1
	}
	if ct.PY {
		cy = ((cy % ct.NY) + ct.NY) % ct.NY
	} else if cy < 0 || cy >= ct.NY {
		return -1
	}
	return cy*ct.NX + cx
}

// Shift returns the (source, destination) ranks for a displacement along a
// dimension, following MPI_Cart_shift. dim 0 is x, dim 1 is y.
func (ct *Cart) Shift(dim, disp int) (src, dst int) {
	switch dim {
	case 0:
		return ct.RankAt(ct.CX-disp, ct.CY), ct.RankAt(ct.CX+disp, ct.CY)
	case 1:
		return ct.RankAt(ct.CX, ct.CY-disp), ct.RankAt(ct.CX, ct.CY+disp)
	default:
		panic(fmt.Sprintf("par: cart shift on invalid dim %d", dim))
	}
}

// Neighbors returns the four edge-neighbour ranks (west, east, south, north),
// with -1 for missing neighbours at non-periodic boundaries.
func (ct *Cart) Neighbors() (w, e, s, n int) {
	w = ct.RankAt(ct.CX-1, ct.CY)
	e = ct.RankAt(ct.CX+1, ct.CY)
	s = ct.RankAt(ct.CX, ct.CY-1)
	n = ct.RankAt(ct.CX, ct.CY+1)
	return
}

// Graph is an arbitrary neighbour topology, used by the compacted ocean
// decomposition (§5.2.2) where removing land points produces an irregular
// communication graph.
type Graph struct {
	Comm      *Comm
	Neighbors []int // ranks this rank exchanges halos with, sorted ascending
}

// NewGraph validates and wraps a neighbour list. Duplicate and self entries
// are rejected; the list is defensively copied.
func NewGraph(c *Comm, neighbors []int) *Graph {
	seen := make(map[int]bool, len(neighbors))
	out := make([]int, 0, len(neighbors))
	for _, n := range neighbors {
		if n == c.Rank() {
			panic("par: graph topology may not include self")
		}
		if n < 0 || n >= c.Size() {
			panic(fmt.Sprintf("par: graph neighbour %d out of range", n))
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	return &Graph{Comm: c, Neighbors: out}
}

// NeighborAlltoallF64 exchanges one float64 block with each neighbour:
// send[i] goes to Neighbors[i]; the result holds the block received from
// Neighbors[i] at index i. All ranks must agree on the symmetric neighbour
// relation (if a lists b, b must list a).
func (g *Graph) NeighborAlltoallF64(tag int, send [][]float64) [][]float64 {
	if len(send) != len(g.Neighbors) {
		panic(fmt.Sprintf("par: neighbour exchange needs %d blocks, got %d", len(g.Neighbors), len(send)))
	}
	for i, n := range g.Neighbors {
		Send(g.Comm, n, tag, send[i])
	}
	out := make([][]float64, len(g.Neighbors))
	for i, n := range g.Neighbors {
		v, _ := Recv[[]float64](g.Comm, n, tag)
		out[i] = v
	}
	return out
}
