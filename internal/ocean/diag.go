package ocean

import "math"

// TracerContent returns the global volume integral of a tracer field
// (Σ tr·vol over wet cells), reduced across ranks. Conserved by transport;
// changed only by surface forcing.
func (o *Ocean) TracerContent(tr []float64) float64 {
	n2 := o.LNI * o.LNJ
	var local float64
	for lj := 0; lj < o.B.NJ; lj++ {
		jg := o.B.J0 + lj
		area := o.G.DX[jg] * o.G.DY
		for li := 0; li < o.B.NI; li++ {
			c := o.idx2(li, lj)
			for k := 0; k < o.kmt[c]; k++ {
				local += tr[k*n2+c] * area * o.dz[k]
			}
		}
	}
	return o.B.AllreduceSum(local)
}

// HeatContentLocal returns this rank's contribution to the ocean heat
// content, ρ₀·c_p·Σ T·vol over owned wet cells (J). No reduction: the budget
// ledger batches the cross-rank sum with its other terms in one collective.
func (o *Ocean) HeatContentLocal() float64 {
	n2 := o.LNI * o.LNJ
	var local float64
	for lj := 0; lj < o.B.NJ; lj++ {
		jg := o.B.J0 + lj
		area := o.G.DX[jg] * o.G.DY
		for li := 0; li < o.B.NI; li++ {
			c := o.idx2(li, lj)
			for k := 0; k < o.kmt[c]; k++ {
				local += o.T[k*n2+c] * area * o.dz[k]
			}
		}
	}
	return Rho0 * Cp * local
}

// SaltContentLocal returns this rank's contribution to the total salt mass,
// ρ₀·Σ S·vol/1000 over owned wet cells (kg; S in psu = g/kg). Unreduced,
// like HeatContentLocal.
func (o *Ocean) SaltContentLocal() float64 {
	n2 := o.LNI * o.LNJ
	var local float64
	for lj := 0; lj < o.B.NJ; lj++ {
		jg := o.B.J0 + lj
		area := o.G.DX[jg] * o.G.DY
		for li := 0; li < o.B.NI; li++ {
			c := o.idx2(li, lj)
			for k := 0; k < o.kmt[c]; k++ {
				local += o.S[k*n2+c] * area * o.dz[k]
			}
		}
	}
	return Rho0 * local / 1000
}

// MeanSSH returns the area-weighted global mean sea surface height over wet
// cells. Volume conservation of the barotropic solver keeps it near its
// initial value.
func (o *Ocean) MeanSSH() float64 {
	var num, den float64
	for lj := 0; lj < o.B.NJ; lj++ {
		jg := o.B.J0 + lj
		area := o.G.DX[jg] * o.G.DY
		for li := 0; li < o.B.NI; li++ {
			c := o.idx2(li, lj)
			if !o.maskT[c] {
				continue
			}
			num += o.Eta[c] * area
			den += area
		}
	}
	num = o.B.AllreduceSum(num)
	den = o.B.AllreduceSum(den)
	if den == 0 {
		return 0
	}
	return num / den
}

// SurfaceKineticEnergy returns the global mean surface kinetic energy
// ½(u²+v²) over wet cells — the quantity mapped in Fig 1a/1c.
func (o *Ocean) SurfaceKineticEnergy() float64 {
	var num, den float64
	for lj := 0; lj < o.B.NJ; lj++ {
		jg := o.B.J0 + lj
		area := o.G.DX[jg] * o.G.DY
		for li := 0; li < o.B.NI; li++ {
			c := o.idx2(li, lj)
			if !o.maskT[c] {
				continue
			}
			u := 0.5 * (o.U[c] + o.U[c-1])
			v := 0.5 * (o.V[c] + o.V[c-o.LNI])
			num += 0.5 * (u*u + v*v) * area
			den += area
		}
	}
	num = o.B.AllreduceSum(num)
	den = o.B.AllreduceSum(den)
	if den == 0 {
		return 0
	}
	return num / den
}

// MaxSurfaceSpeed returns the global maximum surface current speed.
func (o *Ocean) MaxSurfaceSpeed() float64 {
	local := 0.0
	for lj := 0; lj < o.B.NJ; lj++ {
		for li := 0; li < o.B.NI; li++ {
			c := o.idx2(li, lj)
			if !o.maskT[c] {
				continue
			}
			u := 0.5 * (o.U[c] + o.U[c-1])
			v := 0.5 * (o.V[c] + o.V[c-o.LNI])
			if s := math.Hypot(u, v); s > local {
				local = s
			}
		}
	}
	return o.B.AllreduceMax(local)
}

// SurfaceRossby computes the local sea-surface Rossby number field
// ζ/f — relative vorticity normalized by the Coriolis parameter — the
// typhoon-response diagnostic of Fig 6c/6d. Land and near-equator cells
// (|f| below threshold) hold zero. The returned slice covers the owned
// region in row-major order (NJ × NI).
func (o *Ocean) SurfaceRossby() []float64 {
	o.B.ExchangeVec(o.U[:o.LNI*o.LNJ])
	o.B.ExchangeVec(o.V[:o.LNI*o.LNJ])
	out := make([]float64, o.B.NJ*o.B.NI)
	const fMin = 1e-5
	for lj := 0; lj < o.B.NJ; lj++ {
		jg := o.B.J0 + lj
		f := o.G.Coriolis(jg)
		if math.Abs(f) < fMin {
			continue
		}
		dxT := o.G.DX[jg]
		for li := 0; li < o.B.NI; li++ {
			c := o.idx2(li, lj)
			if !o.maskT[c] {
				continue
			}
			zeta := (o.V[c] - o.V[c-1]) / dxT
			zeta -= (o.U[c] - o.U[c-o.LNI]) / o.G.DY
			out[lj*o.B.NI+li] = zeta / f
		}
	}
	return out
}

// GatherSurface assembles the owned part of a local 2-D field into a global
// array on rank 0 (nil elsewhere), for output and plotting.
func (o *Ocean) GatherSurface(f []float64) []float64 {
	return o.B.GatherGlobal(f)
}

// surfaceOwned extracts the owned region (NJ × NI) of the surface level of
// a local field (2-D, or level 0 of a 3-D field).
func (o *Ocean) surfaceOwned(f []float64) []float64 {
	out := make([]float64, o.B.NJ*o.B.NI)
	for lj := 0; lj < o.B.NJ; lj++ {
		for li := 0; li < o.B.NI; li++ {
			out[lj*o.B.NI+li] = f[o.idx2(li, lj)]
		}
	}
	return out
}

// SurfaceTemperature returns the local owned-region SST (NJ × NI).
func (o *Ocean) SurfaceTemperature() []float64 {
	out := make([]float64, o.B.NJ*o.B.NI)
	for lj := 0; lj < o.B.NJ; lj++ {
		for li := 0; li < o.B.NI; li++ {
			out[lj*o.B.NI+li] = o.T[o.idx2(li, lj)]
		}
	}
	return out
}
