package ocean

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/par"
	"repro/internal/pp"
)

// Steady-state stepping must not allocate: the scratch buffers and bound
// row kernels built on the first Step absorb every later one.
func TestStepZeroAllocSteadyState(t *testing.T) {
	g, err := grid.NewTripolar(24, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	par.Run(1, func(c *par.Comm) {
		b, err := grid.NewTripolarReplicated(g, c, 1)
		if err != nil {
			t.Error(err)
			return
		}
		o, err := New(g, b, DefaultConfig(), pp.Serial{})
		if err != nil {
			t.Error(err)
			return
		}
		// Warm steps build the scratch, the kernels, and any lazily grown
		// exchange paths.
		o.Step()
		o.Step()
		allocs := testing.AllocsPerRun(5, func() { o.Step() })
		if allocs != 0 {
			t.Errorf("%.1f allocs per steady-state ocean step, want 0", allocs)
		}
	})
}
