package ocean

import "math"

// Richardson-number-dependent vertical mixing — the stand-in for LICOM's
// canuto turbulence closure, which is the scheme the paper's §5.2.2
// non-ocean-point exclusion originally targeted at thread level before
// being extended to the whole component. The scheme is
// Pacanowski–Philander (1981): interface diffusivity rises steeply when the
// gradient Richardson number Ri = N²/S² drops (shear instability), and
// collapses to a small background value under stable stratification.
//
// The sweep runs column by column over wet points only — exactly the access
// pattern the compaction optimizes — and is exposed both as part of the
// tracer step (when enabled) and as a standalone kernel for the compaction
// benchmark.

// MixingConfig parameterizes the closure.
type MixingConfig struct {
	KV0        float64 // maximum shear-driven diffusivity, m²/s
	Alpha      float64 // Ri response steepness (PP81: 5)
	Background float64 // floor diffusivity, m²/s
	NExp       int     // momentum exponent (PP81: viscosity uses (1+αRi)^-2)
}

// DefaultMixing returns the PP81 constants.
func DefaultMixing() MixingConfig {
	return MixingConfig{KV0: 1e-2, Alpha: 5, Background: 1e-5, NExp: 2}
}

// RichardsonNumber computes the gradient Richardson number at the interface
// between levels k-1 and k of one wet column (local index c). Returns +Inf
// for zero shear (fully stable).
func (o *Ocean) RichardsonNumber(c, k int) float64 {
	n2 := o.LNI * o.LNJ
	dzw := 0.5 * (o.dz[k-1] + o.dz[k])
	// Buoyancy frequency² from the density difference across the interface.
	rhoUp := Rho(o.T[(k-1)*n2+c], o.S[(k-1)*n2+c])
	rhoDn := Rho(o.T[k*n2+c], o.S[k*n2+c])
	bvf := Gravity / Rho0 * (rhoDn - rhoUp) / dzw // N² > 0 when stable

	// Velocity shear² at the cell from the two face velocities.
	du := (o.U[(k-1)*n2+c] - o.U[k*n2+c]) / dzw
	dv := (o.V[(k-1)*n2+c] - o.V[k*n2+c]) / dzw
	s2 := du*du + dv*dv
	if s2 == 0 {
		return math.Inf(1)
	}
	return bvf / s2
}

// InterfaceDiffusivity evaluates the PP81 diffusivity for a Richardson
// number.
func (mc MixingConfig) InterfaceDiffusivity(ri float64) float64 {
	if math.IsInf(ri, 1) {
		return mc.Background
	}
	if ri < 0 {
		// Convective instability: mix at the maximum rate.
		return mc.KV0 + mc.Background
	}
	f := 1 / (1 + mc.Alpha*ri)
	kv := mc.KV0
	for n := 0; n < mc.NExp; n++ {
		kv *= f
	}
	return kv + mc.Background
}

// DiffusivityProfile returns the per-interface diffusivities of one wet
// column (length kmt-1; interface i sits between levels i and i+1).
func (o *Ocean) DiffusivityProfile(mc MixingConfig, li, lj int) []float64 {
	c := o.idx2(li, lj)
	kmt := o.kmt[c]
	if kmt < 2 {
		return nil
	}
	out := make([]float64, kmt-1)
	for k := 1; k < kmt; k++ {
		out[k-1] = mc.InterfaceDiffusivity(o.RichardsonNumber(c, k))
	}
	return out
}

// ApplyRiMixing runs one explicit Richardson-mixing step on T and S over
// the owned wet columns. The explicit step is clipped to the diffusive
// stability limit per interface, and the flux form conserves tracer content
// exactly (the property the tests assert). Returns the number of columns
// processed (the compaction accounting).
func (o *Ocean) ApplyRiMixing(mc MixingConfig, dt float64) int {
	n2 := o.LNI * o.LNJ
	cols := 0
	for lj := 0; lj < o.B.NJ; lj++ {
		for li := 0; li < o.B.NI; li++ {
			if o.kmt[o.idx2(li, lj)] >= 2 {
				cols++
			}
		}
	}
	o.Sp.ParallelFor(o.B.NJ, func(lj int) {
		for li := 0; li < o.B.NI; li++ {
			c := o.idx2(li, lj)
			kmt := o.kmt[c]
			if kmt < 2 {
				continue
			}
			for _, tr := range [][]float64{o.T, o.S} {
				// Interface fluxes first (so the update is conservative).
				fluxes := make([]float64, kmt-1)
				for k := 1; k < kmt; k++ {
					dzw := 0.5 * (o.dz[k-1] + o.dz[k])
					kv := mc.InterfaceDiffusivity(o.RichardsonNumber(c, k))
					// Explicit stability clip: kv·dt/dzw² ≤ 0.45.
					if lim := 0.45 * dzw * dzw / dt; kv > lim {
						kv = lim
					}
					fluxes[k-1] = kv * (tr[(k-1)*n2+c] - tr[k*n2+c]) / dzw // downward flux
				}
				for k := 0; k < kmt; k++ {
					var div float64
					if k > 0 {
						div += fluxes[k-1]
					}
					if k < kmt-1 {
						div -= fluxes[k]
					}
					tr[k*n2+c] += dt * div / o.dz[k]
				}
			}
		}
	})
	return cols
}
