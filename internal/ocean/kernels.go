package ocean

import (
	"repro/internal/grid"
	"repro/internal/pp"
)

// This file is the ocean's half of the single-source kernel layer: the five
// hot row kernels (baroclinic momentum, barotropic continuity and momentum,
// split correction, tracer advection–diffusion) live here as free kernel
// bodies over explicit argument bundles, registered in pp.Kernels and
// launched by the thin drivers in step.go. The dynamical kernels are generic
// over pp.Float — the float64 instantiation is bit-for-bit the pre-refactor
// arithmetic (every T() conversion is the identity at float64, expression
// structure and evaluation order are preserved), and the float32
// instantiation is the Vec-space mixed-precision path. The split correction
// and tracer transport stay float64-only by policy: depth-mean and flux
// accumulations are exactly what mixed precision must not touch (§5.2.3 and
// DESIGN.md "single-source kernels").

// Registered kernel hashes, one registration per process.
var (
	hOcnMomentum   = pp.Kernels.MustRegister("ocn.momentum", momentumKernel)
	hOcnContinuity = pp.Kernels.MustRegister("ocn.continuity", continuityKernel)
	hOcnBtMomentum = pp.Kernels.MustRegister("ocn.btmomentum", btMomentumKernel)
	hOcnSplit      = pp.Kernels.MustRegister("ocn.split", splitKernel)
	hOcnAdvect     = pp.Kernels.MustRegister("ocn.advect", advectKernel)
)

// kernGeom is the block geometry a row kernel needs, detached from the
// Ocean struct so kernel bodies depend only on their argument bundle.
type kernGeom struct {
	LNI, LNJ int // local extents including halo
	NI, NJ   int // owned extents
	NL       int // vertical levels
	H        int // halo width
	J0       int // global row of owned row 0
	NY       int // global rows
	n2       int // LNI*LNJ, the level stride
}

// idx2 is the local 2-D offset of owned cell (li, lj).
func (g kernGeom) idx2(li, lj int) int { return (lj+g.H)*g.LNI + li + g.H }

// lapT is the 5-point Laplacian at flat offset i3, the generic transcription
// of Ocean.lap — identical operation order, so float64 is bit-for-bit.
func lapT[T pp.Float](f []T, i3, lni int, dx, dy T) T {
	c := f[i3]
	lapx := (f[i3+1] - 2*c + f[i3-1]) / (dx * dx)
	lapy := (f[i3+lni] - 2*c + f[i3-lni]) / (dy * dy)
	return lapx + lapy
}

// faceDepthT is the depth at a velocity face: the shallower neighbour.
func faceDepthT[T pp.Float](a, b T) T {
	if a < b {
		return a
	}
	return b
}

func maxT[T pp.Float](a, b T) T {
	if a > b {
		return a
	}
	return b
}

// --- baroclinic momentum ---

// momentumArgs carries everything the baroclinic momentum kernel reads and
// writes — step parameters are explicit arguments, replacing the former
// struct-scratch side channel. Views bind the caller-owned 3-D state; the
// pressure integral stays float64 in both instantiations.
type momentumArgs[T pp.Float] struct {
	g   kernGeom
	kmt []int

	dt, dy, grav, ah, bdrag T
	rhoDz0                  float64   // Rho0*dz[0]
	rhoDy                   float64   // Rho0*dy
	cor, corMid             []float64 // per global row: f, 0.5*(f+f_north)
	dx, rhoDx               []float64 // per global row: DX, Rho0*DX

	pr               []float64 // hydrostatic pressure integral (always f64)
	u, v, newU, newV pp.View3Of[T]
	eta, tauX, tauY  []T

	rowF func(lj int) // bound once; launched via s.ParallelFor
}

func (a *momentumArgs[T]) bind(u, v, newU, newV, eta, tauX, tauY []T, pr []float64) {
	g := a.g
	a.u = pp.BindView3("ocn.u", u, g.NL, g.LNJ, g.LNI)
	a.v = pp.BindView3("ocn.v", v, g.NL, g.LNJ, g.LNI)
	a.newU = pp.BindView3("ocn.newU", newU, g.NL, g.LNJ, g.LNI)
	a.newV = pp.BindView3("ocn.newV", newV, g.NL, g.LNJ, g.LNI)
	a.eta, a.tauX, a.tauY, a.pr = eta, tauX, tauY, pr
}

// row updates one owned row. The level loop is split per face — wetness is
// monotone in k (wet exactly for k < min(kmt) of the adjacent columns), so
// each face sweeps a branch-bounded range that the Vec path unrolls 2-way.
// U- and V-face updates write disjoint outputs from pure inputs, so the
// face-major order is bit-identical to the original level-major order.
func (a *momentumArgs[T]) row(lj int) {
	g := a.g
	u, v := a.u.Data, a.v.Data
	jg := g.J0 + lj
	f := T(a.cor[jg])
	fm := T(a.corMid[jg])
	dxT := T(a.dx[jg])
	rhoDx := a.rhoDx[jg]
	vWetRow := jg != g.NY-1
	for li := 0; li < g.NI; li++ {
		c := g.idx2(li, lj)
		e := c + 1
		n := c + g.LNI
		kc := a.kmt[c]
		if kU := minInt(kc, a.kmt[e]); kU > 0 {
			k := 0
			for ; k+1 < kU; k += 2 {
				a.uFace(u, c, e, k, kU, f, dxT, rhoDx)
				a.uFace(u, c, e, k+1, kU, f, dxT, rhoDx)
			}
			if k < kU {
				a.uFace(u, c, e, k, kU, f, dxT, rhoDx)
			}
		}
		if kV := minInt(kc, a.kmt[n]); vWetRow && kV > 0 {
			k := 0
			for ; k+1 < kV; k += 2 {
				a.vFace(v, c, n, k, kV, dxT, fm)
				a.vFace(v, c, n, k+1, kV, dxT, fm)
			}
			if k < kV {
				a.vFace(v, c, n, k, kV, dxT, fm)
			}
		}
	}
}

// uFace updates the U point east of cell c at level k (k < kU, the wet
// range). Arithmetic is the exact transcription of the scalar original.
func (a *momentumArgs[T]) uFace(u []T, c, e, k, kU int, f, dxT T, rhoDx float64) {
	g := a.g
	v := a.v.Data
	i3 := k*g.n2 + c
	vav := T(0.25) * (v[i3] + v[i3+1] + v[i3-g.LNI] + v[i3-g.LNI+1])
	du := f * vav
	du -= a.grav * (a.eta[e] - a.eta[c]) / dxT
	du -= T((a.pr[k*g.n2+e] - a.pr[k*g.n2+c]) / rhoDx)
	du += a.ah * lapT(u, i3, g.LNI, dxT, a.dy)
	if k == 0 {
		tau := T(0.5) * (a.tauX[c] + a.tauX[e])
		du += tau / T(a.rhoDz0)
	}
	if k == kU-1 {
		du -= a.bdrag * u[i3]
	}
	a.newU.Data[i3] = u[i3] + a.dt*du
}

// vFace updates the V point north of cell c at level k (k < kV).
func (a *momentumArgs[T]) vFace(v []T, c, n, k, kV int, dxT, fm T) {
	g := a.g
	u := a.u.Data
	i3 := k*g.n2 + c
	uav := T(0.25) * (u[i3] + u[i3-1] + u[k*g.n2+n] + u[k*g.n2+n-1])
	dv := -fm * uav
	dv -= a.grav * (a.eta[n] - a.eta[c]) / a.dy
	dv -= T((a.pr[k*g.n2+n] - a.pr[k*g.n2+c]) / a.rhoDy)
	dv += a.ah * lapT(v, i3, g.LNI, dxT, a.dy)
	if k == 0 {
		tau := T(0.5) * (a.tauY[c] + a.tauY[n])
		dv += tau / T(a.rhoDz0)
	}
	if k == kV-1 {
		dv -= a.bdrag * v[i3]
	}
	a.newV.Data[i3] = v[i3] + a.dt*dv
}

func momentumKernel(s pp.Space, args any) {
	switch a := args.(type) {
	case *momentumArgs[float64]:
		s.ParallelFor(a.g.NJ, a.rowF)
	case *momentumArgs[float32]:
		s.ParallelFor(a.g.NJ, a.rowF)
	default:
		panic("ocean: momentum kernel launched with foreign args")
	}
}

// --- barotropic continuity ---

type continuityArgs[T pp.Float] struct {
	g     kernGeom
	kmt   []int
	maskT []bool

	dtb, dy     T
	dx, dxSouth []float64 // per global row: DX[jg], DX at jg-1 (clamped)

	depth                   []T
	eta, newEta, ubar, vbar []T

	rowF func(lj int)
}

func (a *continuityArgs[T]) bind(eta, newEta, ubar, vbar []T) {
	a.eta, a.newEta, a.ubar, a.vbar = eta, newEta, ubar, vbar
}

func (a *continuityArgs[T]) row(lj int) {
	g := a.g
	jg := g.J0 + lj
	dxT := T(a.dx[jg])
	dxS := T(a.dxSouth[jg])
	vWetRow := jg != g.NY-1
	southOpen := jg != 0
	for li := 0; li < g.NI; li++ {
		c := g.idx2(li, lj)
		if !a.maskT[c] {
			continue
		}
		e, w, n, sIdx := c+1, c-1, c+g.LNI, c-g.LNI
		he := faceDepthT(a.depth[c], a.depth[e])
		hw := faceDepthT(a.depth[w], a.depth[c])
		hn := faceDepthT(a.depth[c], a.depth[n])
		hs := faceDepthT(a.depth[sIdx], a.depth[c])
		fe := a.ubar[c] * he * a.dy
		fw := a.ubar[w] * hw * a.dy
		fn := T(0)
		if vWetRow && a.kmt[c] > 0 && a.kmt[n] > 0 {
			fn = a.vbar[c] * hn * dxT
		}
		fs := T(0)
		if southOpen {
			fs = a.vbar[sIdx] * hs * dxS
		}
		area := dxT * a.dy
		a.newEta[c] = a.eta[c] - a.dtb*(fe-fw+fn-fs)/area
	}
}

func continuityKernel(s pp.Space, args any) {
	switch a := args.(type) {
	case *continuityArgs[float64]:
		s.ParallelFor(a.g.NJ, a.rowF)
	case *continuityArgs[float32]:
		s.ParallelFor(a.g.NJ, a.rowF)
	default:
		panic("ocean: continuity kernel launched with foreign args")
	}
}

// --- barotropic momentum ---

type btMomentumArgs[T pp.Float] struct {
	g     kernGeom
	kmt   []int
	maskT []bool

	dtb, dy, grav, bdrag, rho0 T
	cor, dx                    []float64

	depth                                            []T
	eta, ubar, vbar, newUbar, newVbar, tauX, tauY []T

	rowF func(lj int)
}

func (a *btMomentumArgs[T]) bind(eta, ubar, vbar, newUbar, newVbar, tauX, tauY []T) {
	a.eta, a.ubar, a.vbar = eta, ubar, vbar
	a.newUbar, a.newVbar = newUbar, newVbar
	a.tauX, a.tauY = tauX, tauY
}

func (a *btMomentumArgs[T]) row(lj int) {
	g := a.g
	jg := g.J0 + lj
	f := T(a.cor[jg])
	dxT := T(a.dx[jg])
	vWetRow := jg != g.NY-1
	for li := 0; li < g.NI; li++ {
		c := g.idx2(li, lj)
		if !a.maskT[c] {
			continue
		}
		e, w, n, sIdx := c+1, c-1, c+g.LNI, c-g.LNI
		he := faceDepthT(a.depth[c], a.depth[e])
		hn := faceDepthT(a.depth[c], a.depth[n])
		if a.kmt[c] > 0 && a.kmt[e] > 0 { // faceWetU at the surface
			vav := T(0.25) * (a.vbar[c] + a.vbar[e] + a.vbar[sIdx] + a.vbar[sIdx+1])
			du := f*vav - a.grav*(a.eta[e]-a.eta[c])/dxT
			du += T(0.5) * (a.tauX[c] + a.tauX[e]) / (a.rho0 * maxT(he, 1))
			du -= a.bdrag * a.ubar[c]
			a.newUbar[c] = a.ubar[c] + a.dtb*du
		}
		if vWetRow && a.kmt[c] > 0 && a.kmt[n] > 0 { // faceWetV at the surface
			uav := T(0.25) * (a.ubar[c] + a.ubar[w] + a.ubar[n] + a.ubar[n-1])
			dv := -f*uav - a.grav*(a.eta[n]-a.eta[c])/a.dy
			dv += T(0.5) * (a.tauY[c] + a.tauY[n]) / (a.rho0 * maxT(hn, 1))
			dv -= a.bdrag * a.vbar[c]
			a.newVbar[c] = a.vbar[c] + a.dtb*dv
		}
	}
}

func btMomentumKernel(s pp.Space, args any) {
	switch a := args.(type) {
	case *btMomentumArgs[float64]:
		s.ParallelFor(a.g.NJ, a.rowF)
	case *btMomentumArgs[float32]:
		s.ParallelFor(a.g.NJ, a.rowF)
	default:
		panic("ocean: btmomentum kernel launched with foreign args")
	}
}

// --- split correction (float64 by policy: depth-mean accumulation) ---

type splitArgs struct {
	g    kernGeom
	kmt  []int
	dz   []float64
	u, v, ubar, vbar []float64
	rowF func(lj int)
}

func (a *splitArgs) row(lj int) {
	g := a.g
	for li := 0; li < g.NI; li++ {
		c := g.idx2(li, lj)
		imposeMeanCol(a.u, a.ubar, a.dz, c, minInt(a.kmt[c], a.kmt[c+1]), g.n2)
		imposeMeanCol(a.v, a.vbar, a.dz, c, minInt(a.kmt[c], a.kmt[c+g.LNI]), g.n2)
	}
}

// imposeMeanCol shifts a velocity column so its depth mean equals the
// barotropic value. The sum runs in float64 always — this is the split
// correction's conservation-critical accumulation.
func imposeMeanCol(f, bar, dz []float64, c, kmax, n2 int) {
	if kmax <= 0 {
		return
	}
	var sum, h float64
	for k := 0; k < kmax; k++ {
		sum += f[k*n2+c] * dz[k]
		h += dz[k]
	}
	shift := bar[c] - sum/h
	for k := 0; k < kmax; k++ {
		f[k*n2+c] += shift
	}
}

func splitKernel(s pp.Space, args any) {
	a, ok := args.(*splitArgs)
	if !ok {
		panic("ocean: split kernel launched with foreign args")
	}
	s.ParallelFor(a.g.NJ, a.rowF)
}

// --- tracer advection–diffusion (float64 by policy: flux-form transport) ---

type advectArgs struct {
	g     kernGeom
	kmt   []int
	maskT []bool

	dt          float64
	dy, kh, kv  float64
	dx, dxSouth []float64
	dz          []float64

	u, v    []float64
	tr, out []float64

	// Surface forcing as an explicit field + denominator — the former
	// surf(c) closure evaluated QHeat[c]/(Rho0*Cp*dz0); the denominator is
	// constant per sweep, so passing it precomputed is bit-identical.
	surf    []float64
	surfDen float64

	rowF func(lj int)
}

func (a *advectArgs) row(lj int) {
	g := a.g
	for li := 0; li < g.NI; li++ {
		if a.maskT[g.idx2(li, lj)] {
			advectColumn(a, li, lj)
		}
	}
}

// advectColumn applies the conservative advection–diffusion update to every
// active level of one wet column. It is the single source shared by the
// full-grid row kernel and the compacted wet-column sweep (§5.2.2), which
// must agree bit for bit.
func advectColumn(a *advectArgs, li, lj int) {
	g := a.g
	n2 := g.n2
	jg := g.J0 + lj
	dxT := a.dx[jg]
	dy := a.dy
	area := dxT * dy
	c := g.idx2(li, lj)
	kc := a.kmt[c]
	tr := a.tr
	vWetRow := jg != g.NY-1
	for k := 0; k < kc; k++ {
		i3 := k*n2 + c
		vol := area * a.dz[k]
		var div float64

		// East face flux (positive = out of this cell).
		if kc > k && a.kmt[c+1] > k {
			div += faceFlux(a.u[i3], tr[i3], tr[i3+1], dy*a.dz[k], a.kh, dxT)
		}
		// West face (owned by the western cell; recompute mirrored).
		if a.kmt[c-1] > k && kc > k {
			div -= faceFlux(a.u[i3-1], tr[i3-1], tr[i3], dy*a.dz[k], a.kh, dxT)
		}
		// North face.
		if vWetRow && kc > k && a.kmt[c+g.LNI] > k {
			div += faceFlux(a.v[i3], tr[i3], tr[i3+g.LNI], dxT*a.dz[k], a.kh, dy)
		}
		// South face (closed at the southern wall).
		if jg != 0 && a.kmt[c-g.LNI] > k && kc > k {
			div -= faceFlux(a.v[i3-g.LNI], tr[i3-g.LNI], tr[i3], a.dxSouth[jg]*a.dz[k], a.kh, dy)
		}

		upd := tr[i3] - a.dt*div/vol

		// Explicit vertical diffusion in flux form: the flux through
		// the interface between levels k-1 and k uses the interface
		// spacing, so content moves between layers without loss.
		if k > 0 {
			dzw := 0.5 * (a.dz[k-1] + a.dz[k])
			upd += a.dt * a.kv * (tr[i3-n2] - tr[i3]) / (dzw * a.dz[k])
		}
		if k < kc-1 {
			dzw := 0.5 * (a.dz[k] + a.dz[k+1])
			upd += a.dt * a.kv * (tr[i3+n2] - tr[i3]) / (dzw * a.dz[k])
		}
		if k == 0 {
			upd += a.dt * (a.surf[c] / a.surfDen)
		}
		a.out[i3] = upd
	}
}

func advectKernel(s pp.Space, args any) {
	a, ok := args.(*advectArgs)
	if !ok {
		panic("ocean: advect kernel launched with foreign args")
	}
	s.ParallelFor(a.g.NJ, a.rowF)
}

// faceFlux returns the combined upwind-advective and diffusive tracer flux
// through one face: u·len·T_up − K·len·(T2−T1)/d.
func faceFlux(u, t1, t2, faceArea, kh, d float64) float64 {
	var adv float64
	if u >= 0 {
		adv = u * faceArea * t1
	} else {
		adv = u * faceArea * t2
	}
	return adv - kh*faceArea*(t2-t1)/d
}

// dxAt returns the zonal spacing at a (possibly out-of-range) global row:
// clamped at the southern boundary, reflected across the northern fold.
func dxAt(g *grid.Tripolar, j int) float64 {
	if j < 0 {
		j = 0
	}
	if j >= g.NY {
		j = 2*g.NY - 1 - j
	}
	return g.DX[j]
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// minIntCap clamps a to at most cap.
func minIntCap(a, cap int) int {
	if a > cap {
		return cap
	}
	return a
}
