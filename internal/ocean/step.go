package ocean

import (
	"repro/internal/grid"
	"repro/internal/precision"
)

// Step advances the ocean one baroclinic step: (1) 3-D baroclinic momentum,
// (2) fast barotropic subcycle updating SSH and the depth-mean flow,
// (3) conservative tracer transport, (4) optional FP32 group quantization
// under the mixed-precision policy.
//
// After the first call warms the persistent scratch buffers, Step performs
// zero heap allocations in the default (FP64, no Ri mixing) configuration
// on a single-rank block — the steady-state property the allocation
// regression test pins.
func (o *Ocean) Step() {
	dt := o.Cfg.DtBaroclinic
	o.baroclinicMomentum(dt)
	o.barotropicCycle(dt)
	o.tracerStep(dt)
	if o.Cfg.RiMixing {
		o.ApplyRiMixing(o.Cfg.Mixing, dt)
	}
	if o.Cfg.Policy == precision.Mixed {
		// §5.2.3: dynamical-core state is stored through group-scaled FP32;
		// accumulations above stayed FP64.
		for _, f := range [][]float64{o.U, o.V, o.T, o.S, o.Eta} {
			if err := precision.QuantizeInPlace(f, o.Cfg.PrecisionGroup); err != nil {
				panic(err)
			}
		}
	}
	o.steps++
}

// scrEnsure builds the persistent scratch and binds the row kernels once.
func (o *Ocean) scrEnsure() *stepScratch {
	if o.scr != nil {
		return o.scr
	}
	n2 := o.LNI * o.LNJ
	n3 := o.NL * n2
	o.scr = &stepScratch{
		pr:   make([]float64, n3),
		u:    make([]float64, n3),
		v:    make([]float64, n3),
		t:    make([]float64, n3),
		s:    make([]float64, n3),
		eta:  make([]float64, n2),
		ubar: make([]float64, n2),
		vbar: make([]float64, n2),
	}
	o.scr.surfT = o.surfaceTForcing
	o.scr.surfS = o.surfaceSForcing
	o.kernMomentum = o.momentumRow
	o.kernContinuity = o.continuityRow
	o.kernBtMomentum = o.btMomentumRow
	o.kernSplit = o.splitRow
	o.kernAdv = o.advectRow
	return o.scr
}

// baroclinicMomentum applies Coriolis, surface-slope and baroclinic
// pressure gradients, wind stress, Laplacian viscosity, and bottom drag to
// the 3-D velocity.
func (o *Ocean) baroclinicMomentum(dt float64) {
	s := o.scrEnsure()
	s.dt = dt
	// One batched split-phase exchange for the whole baroclinic state. Wind
	// stress is face-averaged, so its halo must be current; it changes every
	// coupling interval through Import.
	s.ex = append(s.ex[:0],
		grid.HaloField{Data: o.T, NLev: o.NL},
		grid.HaloField{Data: o.S, NLev: o.NL},
		grid.HaloField{Data: o.U, NLev: o.NL, Vec: true},
		grid.HaloField{Data: o.V, NLev: o.NL, Vec: true},
		grid.HaloField{Data: o.Eta, NLev: 1},
		grid.HaloField{Data: o.TauX, NLev: 1, Vec: true},
		grid.HaloField{Data: o.TauY, NLev: 1, Vec: true},
	)
	o.B.StartExchange(s.ex)
	// Interior-first overlap: the owned-cell pressure integral only reads
	// owned T/S, which StartExchange never touches, so it runs while halo
	// messages are in flight. Halo columns are integrated after Finish —
	// the same values the all-at-once sweep would produce.
	h := o.B.H
	o.pressureCells(s, h, h+o.B.NJ, h, h+o.B.NI)
	o.B.FinishExchange(s.ex)
	o.pressureCells(s, 0, h, 0, o.LNI)               // south halo rows
	o.pressureCells(s, h+o.B.NJ, o.LNJ, 0, o.LNI)    // north halo rows
	o.pressureCells(s, h, h+o.B.NJ, 0, h)            // west halo columns
	o.pressureCells(s, h, h+o.B.NJ, h+o.B.NI, o.LNI) // east halo columns

	copy(s.u, o.U)
	copy(s.v, o.V)
	o.Sp.ParallelFor(o.B.NJ, o.kernMomentum)
	o.U, s.u = s.u, o.U
	o.V, s.v = s.v, o.V
}

// pressureCells integrates the hydrostatic baroclinic pressure p'(k) for the
// local cells with raw local row in [j0, j1) and raw local column in
// [i0, i1) — halo offsets included, not owned coordinates. The persistent
// buffer is not zeroed between calls: the momentum kernel only reads pr at
// wet faces, i.e. within the kmt range of both adjacent columns, and exactly
// those entries are rewritten here every call.
func (o *Ocean) pressureCells(s *stepScratch, j0, j1, i0, i1 int) {
	n2 := o.LNI * o.LNJ
	for j := j0; j < j1; j++ {
		for i := i0; i < i1; i++ {
			idx := j*o.LNI + i
			if !o.maskT[idx] {
				continue
			}
			acc := 0.0
			for k := 0; k < o.kmt[idx]; k++ {
				i3 := k*n2 + idx
				acc += Gravity * Rho(o.T[i3], o.S[i3]) * o.dz[k]
				s.pr[i3] = acc
			}
		}
	}
}

// momentumRow is the baroclinic momentum kernel for one owned row. It reads
// its step parameters from the scratch area (set by baroclinicMomentum) so
// the kernel value is bound once instead of closed over per call.
func (o *Ocean) momentumRow(lj int) {
	s := o.scr
	dt := s.dt
	pr, newU, newV := s.pr, s.u, s.v
	n2 := o.LNI * o.LNJ
	jg := o.B.J0 + lj
	f := o.G.Coriolis(jg)
	dxT := o.G.DX[jg]
	dy := o.G.DY
	for li := 0; li < o.B.NI; li++ {
		c := o.idx2(li, lj)
		e := c + 1
		n := c + o.LNI
		for k := 0; k < o.NL; k++ {
			i3 := k*n2 + c
			// U face (east of cell li).
			if o.faceWetU(k, li, lj) {
				// Average V onto the U point (4-point).
				vav := 0.25 * (o.V[i3] + o.V[i3+1] + o.V[i3-o.LNI] + o.V[i3-o.LNI+1])
				du := f * vav
				du -= Gravity * (o.Eta[e] - o.Eta[c]) / dxT
				du -= (pr[k*n2+e] - pr[k*n2+c]) / (Rho0 * dxT)
				du += o.Cfg.AH * o.lap(o.U, k, li, lj, dxT, dy)
				if k == 0 {
					tau := 0.5 * (o.TauX[c] + o.TauX[e])
					du += tau / (Rho0 * o.dz[0])
				}
				if k == minInt(o.kmt[c], o.kmt[e])-1 {
					du -= o.Cfg.BottomDrag * o.U[i3] // Rayleigh drag
				}
				newU[i3] = o.U[i3] + dt*du
			}
			// V face (north of cell lj).
			if o.faceWetV(k, li, lj) {
				fv := o.G.Coriolis(minIntCap(jg+1, o.G.NY-1))
				fm := 0.5 * (f + fv)
				uav := 0.25 * (o.U[i3] + o.U[i3-1] + o.U[k*n2+n] + o.U[k*n2+n-1])
				dv := -fm * uav
				dv -= Gravity * (o.Eta[n] - o.Eta[c]) / dy
				dv -= (pr[k*n2+n] - pr[k*n2+c]) / (Rho0 * dy)
				dv += o.Cfg.AH * o.lap(o.V, k, li, lj, dxT, dy)
				if k == 0 {
					tau := 0.5 * (o.TauY[c] + o.TauY[n])
					dv += tau / (Rho0 * o.dz[0])
				}
				if k == minInt(o.kmt[c], o.kmt[n])-1 {
					dv -= o.Cfg.BottomDrag * o.V[i3]
				}
				newV[i3] = o.V[i3] + dt*dv
			}
		}
	}
}

// lap is the 5-point Laplacian of a 3-D field at level k, owned cell
// (li, lj), masked to wet faces.
func (o *Ocean) lap(fld []float64, k, li, lj int, dx, dy float64) float64 {
	n2 := o.LNI * o.LNJ
	i3 := k*n2 + o.idx2(li, lj)
	c := fld[i3]
	lapx := (fld[i3+1] - 2*c + fld[i3-1]) / (dx * dx)
	lapy := (fld[i3+o.LNI] - 2*c + fld[i3-o.LNI]) / (dy * dy)
	return lapx + lapy
}

// barotropicCycle subcycles the 2-D free-surface equations with the
// standard forward-backward scheme (continuity first, then momentum using
// the updated surface height — neutrally stable for the external gravity
// wave, unlike forward Euler), then replaces the depth-mean of the 3-D
// velocity with the barotropic solution (the split-explicit correction).
func (o *Ocean) barotropicCycle(dt float64) {
	s := o.scrEnsure()
	nsub := o.Cfg.NBarotropicSub
	s.dtb = dt / float64(nsub)
	for sub := 0; sub < nsub; sub++ {
		s.ex = append(s.ex[:0],
			grid.HaloField{Data: o.Ubar, NLev: 1, Vec: true},
			grid.HaloField{Data: o.Vbar, NLev: 1, Vec: true},
			grid.HaloField{Data: o.Eta, NLev: 1},
		)
		o.B.ExchangeFields(s.ex)

		// --- Continuity (forward): η from the current transports ---
		copy(s.eta, o.Eta)
		o.Sp.ParallelFor(o.B.NJ, o.kernContinuity)
		o.Eta, s.eta = s.eta, o.Eta
		o.B.Exchange(o.Eta)

		// --- Momentum (backward): transports from the new η ---
		copy(s.ubar, o.Ubar)
		copy(s.vbar, o.Vbar)
		o.Sp.ParallelFor(o.B.NJ, o.kernBtMomentum)
		o.Ubar, s.ubar = s.ubar, o.Ubar
		o.Vbar, s.vbar = s.vbar, o.Vbar
	}

	// Split correction: impose the barotropic depth-mean on the 3-D field.
	o.Sp.ParallelFor(o.B.NJ, o.kernSplit)
}

// continuityRow is the barotropic continuity kernel for one owned row,
// writing the updated η into the scratch double buffer.
func (o *Ocean) continuityRow(lj int) {
	s := o.scr
	dtb := s.dtb
	newEta := s.eta
	jg := o.B.J0 + lj
	dxT := o.G.DX[jg]
	dy := o.G.DY
	for li := 0; li < o.B.NI; li++ {
		c := o.idx2(li, lj)
		if !o.maskT[c] {
			continue
		}
		e, w, n, sIdx := c+1, c-1, c+o.LNI, c-o.LNI
		he := faceDepth(o.depth[c], o.depth[e])
		hw := faceDepth(o.depth[w], o.depth[c])
		hn := faceDepth(o.depth[c], o.depth[n])
		hs := faceDepth(o.depth[sIdx], o.depth[c])
		fe := o.Ubar[c] * he * dy
		fw := o.Ubar[w] * hw * dy
		fn := 0.0
		if o.faceWetV(0, li, lj) {
			fn = o.Vbar[c] * hn * dxT
		}
		fs := 0.0
		if !o.southClosed(lj) {
			fs = o.Vbar[sIdx] * hs * dxAt(o.G, jg-1)
		}
		area := dxT * dy
		newEta[c] = o.Eta[c] - dtb*(fe-fw+fn-fs)/area
	}
}

// btMomentumRow is the barotropic momentum kernel for one owned row,
// writing the updated transports into the scratch double buffers.
func (o *Ocean) btMomentumRow(lj int) {
	s := o.scr
	dtb := s.dtb
	newUb, newVb := s.ubar, s.vbar
	jg := o.B.J0 + lj
	f := o.G.Coriolis(jg)
	dxT := o.G.DX[jg]
	dy := o.G.DY
	for li := 0; li < o.B.NI; li++ {
		c := o.idx2(li, lj)
		if !o.maskT[c] {
			continue
		}
		e, w, n, sIdx := c+1, c-1, c+o.LNI, c-o.LNI
		he := faceDepth(o.depth[c], o.depth[e])
		hn := faceDepth(o.depth[c], o.depth[n])
		if o.faceWetU(0, li, lj) {
			vav := 0.25 * (o.Vbar[c] + o.Vbar[e] + o.Vbar[sIdx] + o.Vbar[sIdx+1])
			du := f*vav - Gravity*(o.Eta[e]-o.Eta[c])/dxT
			du += 0.5 * (o.TauX[c] + o.TauX[e]) / (Rho0 * maxF(he, 1))
			du -= o.Cfg.BottomDrag * o.Ubar[c]
			newUb[c] = o.Ubar[c] + dtb*du
		}
		if o.faceWetV(0, li, lj) {
			uav := 0.25 * (o.Ubar[c] + o.Ubar[w] + o.Ubar[n] + o.Ubar[n-1])
			dv := -f*uav - Gravity*(o.Eta[n]-o.Eta[c])/dy
			dv += 0.5 * (o.TauY[c] + o.TauY[n]) / (Rho0 * maxF(hn, 1))
			dv -= o.Cfg.BottomDrag * o.Vbar[c]
			newVb[c] = o.Vbar[c] + dtb*dv
		}
	}
}

// splitRow applies the split correction to one owned row.
func (o *Ocean) splitRow(lj int) {
	n2 := o.LNI * o.LNJ
	for li := 0; li < o.B.NI; li++ {
		c := o.idx2(li, lj)
		o.imposeMean(o.U, o.Ubar, c, minInt(o.kmt[c], o.kmt[c+1]), n2)
		o.imposeMean(o.V, o.Vbar, c, minInt(o.kmt[c], o.kmt[c+o.LNI]), n2)
	}
}

// imposeMean shifts a velocity column so its depth mean equals the
// barotropic value.
func (o *Ocean) imposeMean(f []float64, bar []float64, c, kmax, n2 int) {
	if kmax <= 0 {
		return
	}
	var sum, h float64
	for k := 0; k < kmax; k++ {
		sum += f[k*n2+c] * o.dz[k]
		h += o.dz[k]
	}
	shift := bar[c] - sum/h
	for k := 0; k < kmax; k++ {
		f[k*n2+c] += shift
	}
}

// tracerStep advances temperature and salinity with conservative upwind
// flux-form advection, Laplacian diffusion, explicit vertical diffusion,
// and the surface heat / freshwater forcing.
func (o *Ocean) tracerStep(dt float64) {
	s := o.scrEnsure()
	s.ex = append(s.ex[:0],
		grid.HaloField{Data: o.T, NLev: o.NL},
		grid.HaloField{Data: o.S, NLev: o.NL},
		grid.HaloField{Data: o.U, NLev: o.NL, Vec: true},
		grid.HaloField{Data: o.V, NLev: o.NL, Vec: true},
	)
	o.B.ExchangeFields(s.ex)
	o.advectDiffuseInto(o.T, s.t, dt, s.surfT)
	o.T, s.t = s.t, o.T
	o.advectDiffuseInto(o.S, s.s, dt, s.surfS)
	o.S, s.s = s.s, o.S
}

func (o *Ocean) surfaceTForcing(c int) float64 {
	return o.QHeat[c] / (Rho0 * Cp * o.dz[0])
}

func (o *Ocean) surfaceSForcing(c int) float64 {
	return o.FWFlux[c]
}

// advectDiffuse computes one conservative tracer update into a fresh slice.
// It is the allocating convenience form kept for the compact-sweep
// comparisons; the stepping hot path uses advectDiffuseInto.
func (o *Ocean) advectDiffuse(tr []float64, dt float64, surf func(c int) float64) []float64 {
	out := make([]float64, len(tr))
	o.advectDiffuseInto(tr, out, dt, surf)
	return out
}

// advectDiffuseInto computes one conservative tracer update from tr into
// out (len(out) == len(tr); non-updated entries keep their input values).
// Fluxes are evaluated once per face from the cell pair it separates, so
// the sum of tracer content changes only through the (zero) boundary and
// the surface forcing — the conservation property the tests assert.
func (o *Ocean) advectDiffuseInto(tr, out []float64, dt float64, surf func(c int) float64) {
	copy(out, tr)
	s := o.scrEnsure()
	s.advTr, s.advOut, s.advDt, s.advSurf = tr, out, dt, surf
	o.Sp.ParallelFor(o.B.NJ, o.kernAdv)
	s.advTr, s.advOut, s.advSurf = nil, nil, nil
}

// advectRow is the tracer advection–diffusion kernel for one owned row.
func (o *Ocean) advectRow(lj int) {
	s := o.scr
	for li := 0; li < o.B.NI; li++ {
		if o.maskT[o.idx2(li, lj)] {
			o.updateColumn(s.advTr, s.advOut, s.advDt, li, lj, s.advSurf)
		}
	}
}

// updateColumn applies the conservative advection–diffusion update to every
// active level of one wet column. It is shared by the full-grid sweep and
// the compacted wet-column sweep (§5.2.2), which must agree bit for bit.
func (o *Ocean) updateColumn(tr, out []float64, dt float64, li, lj int, surf func(c int) float64) {
	n2 := o.LNI * o.LNJ
	jg := o.B.J0 + lj
	dxT := o.G.DX[jg]
	dy := o.G.DY
	area := dxT * dy
	c := o.idx2(li, lj)
	for k := 0; k < o.kmt[c]; k++ {
		i3 := k*n2 + c
		vol := area * o.dz[k]
		var div float64

		// East face flux (positive = out of this cell).
		if o.faceWetU(k, li, lj) {
			div += faceFlux(o.U[i3], tr[i3], tr[i3+1], dy*o.dz[k], o.Cfg.KH, dxT)
		}
		// West face (owned by the western cell; recompute mirrored).
		if o.kmt[c-1] > k && o.kmt[c] > k {
			div -= faceFlux(o.U[i3-1], tr[i3-1], tr[i3], dy*o.dz[k], o.Cfg.KH, dxT)
		}
		// North face.
		if o.faceWetV(k, li, lj) {
			div += faceFlux(o.V[i3], tr[i3], tr[i3+o.LNI], dxT*o.dz[k], o.Cfg.KH, dy)
		}
		// South face (closed at the southern wall).
		if !o.southClosed(lj) && o.kmt[c-o.LNI] > k && o.kmt[c] > k {
			div -= faceFlux(o.V[i3-o.LNI], tr[i3-o.LNI], tr[i3], dxAt(o.G, jg-1)*o.dz[k], o.Cfg.KH, dy)
		}

		upd := tr[i3] - dt*div/vol

		// Explicit vertical diffusion in flux form: the flux through
		// the interface between levels k-1 and k uses the interface
		// spacing, so content moves between layers without loss.
		if k > 0 {
			dzw := 0.5 * (o.dz[k-1] + o.dz[k])
			upd += dt * o.Cfg.KV * (tr[i3-n2] - tr[i3]) / (dzw * o.dz[k])
		}
		if k < o.kmt[c]-1 {
			dzw := 0.5 * (o.dz[k] + o.dz[k+1])
			upd += dt * o.Cfg.KV * (tr[i3+n2] - tr[i3]) / (dzw * o.dz[k])
		}
		if k == 0 {
			upd += dt * surf(c)
		}
		out[i3] = upd
	}
}

// faceFlux returns the combined upwind-advective and diffusive tracer flux
// through one face: u·len·T_up − K·len·(T2−T1)/d.
func faceFlux(u, t1, t2, faceArea, kh, d float64) float64 {
	var adv float64
	if u >= 0 {
		adv = u * faceArea * t1
	} else {
		adv = u * faceArea * t2
	}
	return adv - kh*faceArea*(t2-t1)/d
}

// faceDepth is the depth at a velocity face: the shallower neighbour
// (no flow into a cliff).
func faceDepth(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// dxAt returns the zonal spacing at a (possibly out-of-range) global row:
// clamped at the southern boundary, reflected across the northern fold.
func dxAt(g *grid.Tripolar, j int) float64 {
	if j < 0 {
		j = 0
	}
	if j >= g.NY {
		j = 2*g.NY - 1 - j
	}
	return g.DX[j]
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// minIntCap clamps a to at most cap.
func minIntCap(a, cap int) int {
	if a > cap {
		return cap
	}
	return a
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
