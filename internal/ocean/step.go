package ocean

import (
	"repro/internal/grid"
	"repro/internal/pp"
	"repro/internal/precision"
)

// Step advances the ocean one baroclinic step: (1) 3-D baroclinic momentum,
// (2) fast barotropic subcycle updating SSH and the depth-mean flow,
// (3) conservative tracer transport, (4) optional FP32 group quantization
// under the mixed-precision policy.
//
// The numerics live in kernels.go as registered pp kernels; Step and its
// phase drivers only bind views, run halo exchanges, and launch. Under
// pp.PrecF64 (any Serial/Host/CPE space) the float64 instantiations run and
// the results are bit-for-bit with the pre-kernel-layer code; under a Vec
// space (pp.PrecMixed) the dynamical kernels run their float32
// instantiations against mirror buffers while the pressure integral, split
// correction, and tracer transport stay float64.
//
// After the first call warms the persistent scratch buffers, Step performs
// zero heap allocations in the default (FP64, no Ri mixing) configuration
// on a single-rank block — the steady-state property the allocation
// regression test pins.
func (o *Ocean) Step() {
	dt := o.Cfg.DtBaroclinic
	o.baroclinicMomentum(dt)
	o.barotropicCycle(dt)
	o.tracerStep(dt)
	if o.Cfg.RiMixing {
		o.ApplyRiMixing(o.Cfg.Mixing, dt)
	}
	if o.Cfg.Policy == precision.Mixed {
		// §5.2.3: dynamical-core state is stored through group-scaled FP32;
		// accumulations above stayed FP64.
		for _, f := range [][]float64{o.U, o.V, o.T, o.S, o.Eta} {
			if err := precision.QuantizeInPlace(f, o.Cfg.PrecisionGroup); err != nil {
				panic(err)
			}
		}
	}
	o.steps++
}

// scrEnsure builds the persistent scratch and the bound kernel argument
// bundles once. Per-step parameters are plain fields on the bundles, set by
// the drivers before each launch — explicit arguments, not a side channel
// threaded through the Ocean struct.
func (o *Ocean) scrEnsure() *stepScratch {
	if o.scr != nil {
		return o.scr
	}
	n2 := o.LNI * o.LNJ
	n3 := o.NL * n2
	s := &stepScratch{
		pr:   make([]float64, n3),
		u:    make([]float64, n3),
		v:    make([]float64, n3),
		t:    make([]float64, n3),
		s:    make([]float64, n3),
		eta:  make([]float64, n2),
		ubar: make([]float64, n2),
		vbar: make([]float64, n2),
	}
	geo := kernGeom{
		LNI: o.LNI, LNJ: o.LNJ,
		NI: o.B.NI, NJ: o.B.NJ,
		NL: o.NL, H: o.B.H, J0: o.B.J0, NY: o.G.NY,
		n2: n2,
	}
	// Per-global-row geometry, precomputed with the same float64 operations
	// the scalar kernels performed inline, so reading the tables back is
	// bit-identical.
	cor := make([]float64, o.G.NY)
	corMid := make([]float64, o.G.NY)
	rhoDx := make([]float64, o.G.NY)
	dxSouth := make([]float64, o.G.NY)
	for j := 0; j < o.G.NY; j++ {
		cor[j] = o.G.Coriolis(j)
		corMid[j] = 0.5 * (cor[j] + o.G.Coriolis(minIntCap(j+1, o.G.NY-1)))
		rhoDx[j] = Rho0 * o.G.DX[j]
		dxSouth[j] = dxAt(o.G, j-1)
	}

	s.mom = &momentumArgs[float64]{
		g: geo, kmt: o.kmt,
		dy: o.G.DY, grav: Gravity, ah: o.Cfg.AH, bdrag: o.Cfg.BottomDrag,
		rhoDz0: Rho0 * o.dz[0], rhoDy: Rho0 * o.G.DY,
		cor: cor, corMid: corMid, dx: o.G.DX, rhoDx: rhoDx,
	}
	s.mom.rowF = s.mom.row
	s.cont = &continuityArgs[float64]{
		g: geo, kmt: o.kmt, maskT: o.maskT,
		dy: o.G.DY, dx: o.G.DX, dxSouth: dxSouth, depth: o.depth,
	}
	s.cont.rowF = s.cont.row
	s.bt = &btMomentumArgs[float64]{
		g: geo, kmt: o.kmt, maskT: o.maskT,
		dy: o.G.DY, grav: Gravity, bdrag: o.Cfg.BottomDrag, rho0: Rho0,
		cor: cor, dx: o.G.DX, depth: o.depth,
	}
	s.bt.rowF = s.bt.row
	s.split = &splitArgs{
		g: geo, kmt: o.kmt, dz: o.dz,
		u: nil, v: nil, ubar: nil, vbar: nil,
	}
	s.split.rowF = s.split.row
	s.adv = &advectArgs{
		g: geo, kmt: o.kmt, maskT: o.maskT,
		dy: o.G.DY, kh: o.Cfg.KH, kv: o.Cfg.KV,
		dx: o.G.DX, dxSouth: dxSouth, dz: o.dz,
	}
	s.adv.rowF = s.adv.row

	if o.kprec == pp.PrecMixed {
		m := &mixed32{
			u: make([]float32, n3), v: make([]float32, n3),
			newU: make([]float32, n3), newV: make([]float32, n3),
			eta: make([]float32, n2), newEta: make([]float32, n2),
			ubar: make([]float32, n2), vbar: make([]float32, n2),
			newUbar: make([]float32, n2), newVbar: make([]float32, n2),
			tauX: make([]float32, n2), tauY: make([]float32, n2),
			depth: make([]float32, n2),
		}
		pp.Convert32(m.depth, o.depth) // static bathymetry, converted once
		m.mom = &momentumArgs[float32]{
			g: geo, kmt: o.kmt,
			dy: float32(o.G.DY), grav: Gravity, ah: float32(o.Cfg.AH), bdrag: float32(o.Cfg.BottomDrag),
			rhoDz0: Rho0 * o.dz[0], rhoDy: Rho0 * o.G.DY,
			cor: cor, corMid: corMid, dx: o.G.DX, rhoDx: rhoDx,
		}
		m.mom.rowF = m.mom.row
		m.cont = &continuityArgs[float32]{
			g: geo, kmt: o.kmt, maskT: o.maskT,
			dy: float32(o.G.DY), dx: o.G.DX, dxSouth: dxSouth, depth: m.depth,
		}
		m.cont.rowF = m.cont.row
		m.bt = &btMomentumArgs[float32]{
			g: geo, kmt: o.kmt, maskT: o.maskT,
			dy: float32(o.G.DY), grav: Gravity, bdrag: float32(o.Cfg.BottomDrag), rho0: Rho0,
			cor: cor, dx: o.G.DX, depth: m.depth,
		}
		m.bt.rowF = m.bt.row
		s.m32 = m
	}
	o.scr = s
	return s
}

// baroclinicMomentum applies Coriolis, surface-slope and baroclinic
// pressure gradients, wind stress, Laplacian viscosity, and bottom drag to
// the 3-D velocity.
func (o *Ocean) baroclinicMomentum(dt float64) {
	s := o.scrEnsure()
	// One batched split-phase exchange for the whole baroclinic state. Wind
	// stress is face-averaged, so its halo must be current; it changes every
	// coupling interval through Import.
	s.ex = append(s.ex[:0],
		grid.HaloField{Data: o.T, NLev: o.NL},
		grid.HaloField{Data: o.S, NLev: o.NL},
		grid.HaloField{Data: o.U, NLev: o.NL, Vec: true},
		grid.HaloField{Data: o.V, NLev: o.NL, Vec: true},
		grid.HaloField{Data: o.Eta, NLev: 1},
		grid.HaloField{Data: o.TauX, NLev: 1, Vec: true},
		grid.HaloField{Data: o.TauY, NLev: 1, Vec: true},
	)
	o.B.StartExchange(s.ex)
	// Interior-first overlap: the owned-cell pressure integral only reads
	// owned T/S, which StartExchange never touches, so it runs while halo
	// messages are in flight. Halo columns are integrated after Finish —
	// the same values the all-at-once sweep would produce.
	h := o.B.H
	o.pressureCells(s, h, h+o.B.NJ, h, h+o.B.NI)
	o.B.FinishExchange(s.ex)
	o.pressureCells(s, 0, h, 0, o.LNI)               // south halo rows
	o.pressureCells(s, h+o.B.NJ, o.LNJ, 0, o.LNI)    // north halo rows
	o.pressureCells(s, h, h+o.B.NJ, 0, h)            // west halo columns
	o.pressureCells(s, h, h+o.B.NJ, h+o.B.NI, o.LNI) // east halo columns

	if o.kprec == pp.PrecMixed {
		m := s.m32
		pp.Convert32(m.u, o.U)
		pp.Convert32(m.v, o.V)
		copy(m.newU, m.u) // dry faces keep their (converted) values
		copy(m.newV, m.v)
		pp.Convert32(m.eta, o.Eta)
		pp.Convert32(m.tauX, o.TauX)
		pp.Convert32(m.tauY, o.TauY)
		a := m.mom
		a.dt = float32(dt)
		a.bind(m.u, m.v, m.newU, m.newV, m.eta, m.tauX, m.tauY, s.pr)
		pp.Kernels.MustLaunch(hOcnMomentum, o.Sp, a)
		pp.Convert64(o.U, m.newU)
		pp.Convert64(o.V, m.newV)
		return
	}

	copy(s.u, o.U)
	copy(s.v, o.V)
	a := s.mom
	a.dt = dt
	a.bind(o.U, o.V, s.u, s.v, o.Eta, o.TauX, o.TauY, s.pr)
	pp.Kernels.MustLaunch(hOcnMomentum, o.Sp, a)
	o.U, s.u = s.u, o.U
	o.V, s.v = s.v, o.V
}

// pressureCells integrates the hydrostatic baroclinic pressure p'(k) for the
// local cells with raw local row in [j0, j1) and raw local column in
// [i0, i1) — halo offsets included, not owned coordinates. The persistent
// buffer is not zeroed between calls: the momentum kernel only reads pr at
// wet faces, i.e. within the kmt range of both adjacent columns, and exactly
// those entries are rewritten here every call. The integral stays float64
// under every precision mode — it is the accumulation the mixed policy
// protects.
func (o *Ocean) pressureCells(s *stepScratch, j0, j1, i0, i1 int) {
	n2 := o.LNI * o.LNJ
	for j := j0; j < j1; j++ {
		for i := i0; i < i1; i++ {
			idx := j*o.LNI + i
			if !o.maskT[idx] {
				continue
			}
			acc := 0.0
			for k := 0; k < o.kmt[idx]; k++ {
				i3 := k*n2 + idx
				acc += Gravity * Rho(o.T[i3], o.S[i3]) * o.dz[k]
				s.pr[i3] = acc
			}
		}
	}
}

// barotropicCycle subcycles the 2-D free-surface equations with the
// standard forward-backward scheme (continuity first, then momentum using
// the updated surface height — neutrally stable for the external gravity
// wave, unlike forward Euler), then replaces the depth-mean of the 3-D
// velocity with the barotropic solution (the split-explicit correction).
func (o *Ocean) barotropicCycle(dt float64) {
	s := o.scrEnsure()
	nsub := o.Cfg.NBarotropicSub
	dtb := dt / float64(nsub)

	if o.kprec == pp.PrecMixed {
		o.barotropicCycleMixed(s, dtb, nsub)
	} else {
		for sub := 0; sub < nsub; sub++ {
			s.ex = append(s.ex[:0],
				grid.HaloField{Data: o.Ubar, NLev: 1, Vec: true},
				grid.HaloField{Data: o.Vbar, NLev: 1, Vec: true},
				grid.HaloField{Data: o.Eta, NLev: 1},
			)
			o.B.ExchangeFields(s.ex)

			// --- Continuity (forward): η from the current transports ---
			copy(s.eta, o.Eta)
			c := s.cont
			c.dtb = dtb
			c.bind(o.Eta, s.eta, o.Ubar, o.Vbar)
			pp.Kernels.MustLaunch(hOcnContinuity, o.Sp, c)
			o.Eta, s.eta = s.eta, o.Eta
			o.B.Exchange(o.Eta)

			// --- Momentum (backward): transports from the new η ---
			copy(s.ubar, o.Ubar)
			copy(s.vbar, o.Vbar)
			b := s.bt
			b.dtb = dtb
			b.bind(o.Eta, o.Ubar, o.Vbar, s.ubar, s.vbar, o.TauX, o.TauY)
			pp.Kernels.MustLaunch(hOcnBtMomentum, o.Sp, b)
			o.Ubar, s.ubar = s.ubar, o.Ubar
			o.Vbar, s.vbar = s.vbar, o.Vbar
		}
	}

	// Split correction: impose the barotropic depth-mean on the 3-D field.
	// Always float64 — the depth-mean accumulation is conservation-critical.
	sp := s.split
	sp.u, sp.v, sp.ubar, sp.vbar = o.U, o.V, o.Ubar, o.Vbar
	pp.Kernels.MustLaunch(hOcnSplit, o.Sp, sp)
}

// barotropicCycleMixed runs the subcycle on float32 mirrors. Halo exchanges
// stay on the float64 fields; between kernel launches only the H-wide rings
// convert — the owned boundary ring float32→float64 before neighbours read
// it, the halo frame float64→float32 after it is written — so the per-substep
// conversion cost is O(perimeter), not O(area).
func (o *Ocean) barotropicCycleMixed(s *stepScratch, dtb float64, nsub int) {
	m := s.m32
	pp.Convert32(m.ubar, o.Ubar)
	pp.Convert32(m.vbar, o.Vbar)
	pp.Convert32(m.eta, o.Eta)
	// Land and dry-face cells are never written by the kernels; seed the
	// double buffers so they carry the same values across swaps.
	copy(m.newEta, m.eta)
	copy(m.newUbar, m.ubar)
	copy(m.newVbar, m.vbar)
	for sub := 0; sub < nsub; sub++ {
		o.syncOwnedRing64(o.Ubar, m.ubar)
		o.syncOwnedRing64(o.Vbar, m.vbar)
		o.syncOwnedRing64(o.Eta, m.eta)
		s.ex = append(s.ex[:0],
			grid.HaloField{Data: o.Ubar, NLev: 1, Vec: true},
			grid.HaloField{Data: o.Vbar, NLev: 1, Vec: true},
			grid.HaloField{Data: o.Eta, NLev: 1},
		)
		o.B.ExchangeFields(s.ex)
		o.syncHaloRing32(m.ubar, o.Ubar)
		o.syncHaloRing32(m.vbar, o.Vbar)
		o.syncHaloRing32(m.eta, o.Eta)

		c := m.cont
		c.dtb = float32(dtb)
		c.bind(m.eta, m.newEta, m.ubar, m.vbar)
		pp.Kernels.MustLaunch(hOcnContinuity, o.Sp, c)
		m.eta, m.newEta = m.newEta, m.eta
		o.syncOwnedRing64(o.Eta, m.eta)
		o.B.Exchange(o.Eta)
		o.syncHaloRing32(m.eta, o.Eta)

		b := m.bt
		b.dtb = float32(dtb)
		b.bind(m.eta, m.ubar, m.vbar, m.newUbar, m.newVbar, m.tauX, m.tauY)
		pp.Kernels.MustLaunch(hOcnBtMomentum, o.Sp, b)
		m.ubar, m.newUbar = m.newUbar, m.ubar
		m.vbar, m.newVbar = m.newVbar, m.vbar
	}
	pp.Convert64(o.Ubar, m.ubar)
	pp.Convert64(o.Vbar, m.vbar)
	pp.Convert64(o.Eta, m.eta)
}

// syncOwnedRing64 copies the H-wide owned boundary ring from the float32
// mirror into the float64 field — exactly the cells a halo exchange reads
// (what neighbours, the zonal wrap, and the pole fold receive).
func (o *Ocean) syncOwnedRing64(dst []float64, src []float32) {
	H, NI, NJ := o.B.H, o.B.NI, o.B.NJ
	top := H
	if top > NJ {
		top = NJ
	}
	for r := 0; r < top; r++ {
		o.convRow64(dst, src, r)
		if NJ-1-r > r {
			o.convRow64(dst, src, NJ-1-r)
		}
	}
	side := H
	if side > NI {
		side = NI
	}
	for lj := H; lj < NJ-H; lj++ {
		for ci := 0; ci < side; ci++ {
			a := o.idx2(ci, lj)
			dst[a] = float64(src[a])
			if NI-1-ci > ci {
				b := o.idx2(NI-1-ci, lj)
				dst[b] = float64(src[b])
			}
		}
	}
}

func (o *Ocean) convRow64(dst []float64, src []float32, lj int) {
	base := o.idx2(0, lj)
	for i := 0; i < o.B.NI; i++ {
		dst[base+i] = float64(src[base+i])
	}
}

// syncHaloRing32 refreshes the float32 mirror's halo frame (including
// corners) from the float64 field after an exchange wrote it.
func (o *Ocean) syncHaloRing32(dst []float32, src []float64) {
	H, LNI, LNJ := o.B.H, o.LNI, o.LNJ
	for jr := 0; jr < LNJ; jr++ {
		base := jr * LNI
		if jr < H || jr >= LNJ-H {
			for i := 0; i < LNI; i++ {
				dst[base+i] = float32(src[base+i])
			}
			continue
		}
		for i := 0; i < H; i++ {
			dst[base+i] = float32(src[base+i])
			dst[base+LNI-1-i] = float32(src[base+LNI-1-i])
		}
	}
}

// tracerStep advances temperature and salinity with conservative upwind
// flux-form advection, Laplacian diffusion, explicit vertical diffusion,
// and the surface heat / freshwater forcing. Tracer transport is float64
// under every precision mode: the flux-form update telescopes exactly, which
// is what keeps the 1e-10 conservation audit closed even when the advecting
// velocities came through the float32 kernels.
func (o *Ocean) tracerStep(dt float64) {
	s := o.scrEnsure()
	s.ex = append(s.ex[:0],
		grid.HaloField{Data: o.T, NLev: o.NL},
		grid.HaloField{Data: o.S, NLev: o.NL},
		grid.HaloField{Data: o.U, NLev: o.NL, Vec: true},
		grid.HaloField{Data: o.V, NLev: o.NL, Vec: true},
	)
	o.B.ExchangeFields(s.ex)
	o.advectDiffuseInto(o.T, s.t, dt, o.QHeat, o.surfTDen())
	o.T, s.t = s.t, o.T
	o.advectDiffuseInto(o.S, s.s, dt, o.FWFlux, 1)
	o.S, s.s = s.s, o.S
}

// surfTDen is the denominator turning the surface heat flux (W/m²) into a
// temperature tendency for the top layer — the same float64 product the old
// surfaceTForcing closure evaluated per cell.
func (o *Ocean) surfTDen() float64 { return Rho0 * Cp * o.dz[0] }

// advectDiffuse computes one conservative tracer update into a fresh slice.
// It is the allocating convenience form kept for the compact-sweep
// comparisons; the stepping hot path uses advectDiffuseInto. surf is the
// per-cell surface forcing field and surfDen its constant denominator
// (pass 1 for none).
func (o *Ocean) advectDiffuse(tr []float64, dt float64, surf []float64, surfDen float64) []float64 {
	out := make([]float64, len(tr))
	o.advectDiffuseInto(tr, out, dt, surf, surfDen)
	return out
}

// advectDiffuseInto computes one conservative tracer update from tr into
// out (len(out) == len(tr); non-updated entries keep their input values).
// Fluxes are evaluated once per face from the cell pair it separates, so
// the sum of tracer content changes only through the (zero) boundary and
// the surface forcing — the conservation property the tests assert.
func (o *Ocean) advectDiffuseInto(tr, out []float64, dt float64, surf []float64, surfDen float64) {
	copy(out, tr)
	s := o.scrEnsure()
	a := s.adv
	a.tr, a.out, a.dt = tr, out, dt
	a.u, a.v = o.U, o.V
	a.surf, a.surfDen = surf, surfDen
	pp.Kernels.MustLaunch(hOcnAdvect, o.Sp, a)
	a.tr, a.out, a.surf = nil, nil, nil
}
