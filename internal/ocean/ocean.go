// Package ocean is the LICOM-substitute ocean general circulation model of
// the reproduction: a free-surface primitive-equation ocean on the tripolar
// latitude–longitude grid, with LICOM's split time stepping (fast 2-D
// barotropic subcycling inside the 3-D baroclinic step, tracers on the
// baroclinic step), C-grid staggering, flux-form conservative tracer
// transport, a linear equation of state, and surface wind/heat/freshwater
// forcing imported through the coupler.
//
// The model runs distributed over a grid.TripolarDecomp (one 2-D block per
// rank; a 1×1 layout is the serial case, and the replicated decomposition
// gives every rank the full grid), exchanges halos through the par runtime
// in batched split-phase calls that overlap with interior compute, executes
// its kernels through a pp execution space, honours the FP64 /
// group-scaled-FP32 precision policy of §5.2.3, and supports the 3-D
// non-ocean-point exclusion of §5.2.2 via the compact subpackage types.
package ocean

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/pp"
	"repro/internal/precision"
)

// Physical constants (LICOM conventions).
const (
	Gravity = 9.806
	Rho0    = 1026.0 // reference density, kg/m³
	Cp      = 3996.0 // seawater heat capacity, J/(kg K)
	TRef    = 10.0   // EOS reference temperature, °C
	SRef    = 35.0   // EOS reference salinity, psu
	AlphaT  = 2.0e-4 // thermal expansion, 1/K
	BetaS   = 7.6e-4 // haline contraction, 1/psu
)

// Config sets the time stepping and mixing parameters. The paper's
// production configuration uses 2 s / 20 s / 20 s (barotropic / baroclinic /
// tracer); the reproduction keeps the same 1:10 subcycling ratio at
// laptop-scale timesteps.
type Config struct {
	DtBaroclinic   float64 // seconds per baroclinic (and tracer) step
	NBarotropicSub int     // barotropic substeps per baroclinic step
	AH             float64 // horizontal viscosity, m²/s
	KH             float64 // horizontal tracer diffusivity, m²/s
	KV             float64 // vertical tracer diffusivity, m²/s
	BottomDrag     float64 // Rayleigh bottom drag, 1/s
	Policy         precision.Policy
	PrecisionGroup int // group size for FP32 group scaling

	// RiMixing enables the Richardson-number-dependent vertical mixing
	// closure (the canuto-scheme stand-in) on every tracer step.
	RiMixing bool
	Mixing   MixingConfig
}

// DefaultConfig returns a stable configuration for the reproduction grids.
func DefaultConfig() Config {
	return Config{
		DtBaroclinic:   1200,
		NBarotropicSub: 10,
		AH:             5.0e3,
		KH:             1.0e3,
		KV:             1.0e-4,
		BottomDrag:     1.0e-6,
		Policy:         precision.FP64,
		PrecisionGroup: 64,
		Mixing:         DefaultMixing(),
	}
}

// Ocean is the model state on one rank's block.
type Ocean struct {
	G   *grid.Tripolar
	B   *grid.TripolarDecomp
	Cfg Config
	Sp  pp.Space

	NL  int // vertical levels
	LNI int // local extents including halo
	LNJ int

	// Prognostic state. 3-D fields are level-major over the local block
	// including halos; U sits on east faces, V on north faces, tracers and
	// Eta at centers.
	U, V, T, S      []float64
	Eta, Ubar, Vbar []float64
	TauX, TauY      []float64 // surface wind stress, N/m²
	QHeat           []float64 // surface heat flux into the ocean, W/m²
	FWFlux          []float64 // freshwater flux, psu-equivalent tendency

	// Grid-derived local arrays.
	maskT []bool    // wet tracer cell (surface)
	kmt   []int     // active levels per column
	dz    []float64 // layer thicknesses
	depth []float64 // column depth at centers

	steps int

	// kprec is derived from the execution space at New: a pp.Vec space
	// selects the float32 kernel instantiations (mixed precision), anything
	// else the bit-for-bit float64 path.
	kprec pp.Prec

	// Persistent stepping scratch (lazily built on the first Step) holding
	// the double buffers and the bound kernel argument bundles, so
	// steady-state stepping performs zero heap allocations: buffers are
	// swapped instead of reallocated, bundles are built once and their
	// per-step parameters assigned in place.
	scr *stepScratch
}

// stepScratch holds the persistent work arrays of the stepping hot path and
// the kernel argument bundles the drivers bind before each launch. Step
// parameters live on the bundles as explicit arguments — the struct-scratch
// side channel (and its aliasing hazard) is gone.
type stepScratch struct {
	pr              []float64 // hydrostatic baroclinic pressure
	u, v            []float64 // 3-D momentum double buffers
	t, s            []float64 // tracer double buffers
	eta, ubar, vbar []float64 // barotropic double buffers

	// Bound float64 kernel argument bundles.
	mom   *momentumArgs[float64]
	cont  *continuityArgs[float64]
	bt    *btMomentumArgs[float64]
	split *splitArgs
	adv   *advectArgs

	// Float32 mirrors and bundles, built only under mixed precision.
	m32 *mixed32

	// ex is the reusable halo-batch descriptor slice: each exchange site
	// rebuilds it in place (the state arrays swap with the double buffers
	// every step) without allocating.
	ex []grid.HaloField
}

// mixed32 is the float32 mirror state of the Vec (mixed-precision) path:
// the dynamical kernels read and write these, and the drivers convert to
// and from the float64 model state at phase boundaries (full planes once
// per phase, H-wide rings inside the barotropic subcycle).
type mixed32 struct {
	u, v, newU, newV             []float32
	eta, newEta                  []float32
	ubar, vbar, newUbar, newVbar []float32
	tauX, tauY                   []float32
	depth                        []float32

	mom  *momentumArgs[float32]
	cont *continuityArgs[float32]
	bt   *btMomentumArgs[float32]
}

// idx2 returns the local 2-D offset of (li, lj) in owned coordinates.
func (o *Ocean) idx2(li, lj int) int { return (lj+o.B.H)*o.LNI + li + o.B.H }

// idx3 returns the local 3-D offset at level k.
func (o *Ocean) idx3(k, li, lj int) int { return k*o.LNI*o.LNJ + o.idx2(li, lj) }

// New builds the ocean on one rank's block of the given decomposition with
// an initial stratified, resting state.
func New(g *grid.Tripolar, b *grid.TripolarDecomp, cfg Config, sp pp.Space) (*Ocean, error) {
	if cfg.DtBaroclinic <= 0 || cfg.NBarotropicSub <= 0 {
		return nil, fmt.Errorf("ocean: non-positive timestep configuration")
	}
	if sp == nil {
		sp = pp.Serial{}
	}
	o := &Ocean{
		G: g, B: b, Cfg: cfg, Sp: sp,
		NL:  g.NLevel,
		LNI: b.LNI(), LNJ: b.LNJ(),
		kprec: pp.PrecOf(sp),
	}
	n2 := o.LNI * o.LNJ
	n3 := o.NL * n2
	o.U = make([]float64, n3)
	o.V = make([]float64, n3)
	o.T = make([]float64, n3)
	o.S = make([]float64, n3)
	o.Eta = make([]float64, n2)
	o.Ubar = make([]float64, n2)
	o.Vbar = make([]float64, n2)
	o.TauX = make([]float64, n2)
	o.TauY = make([]float64, n2)
	o.QHeat = make([]float64, n2)
	o.FWFlux = make([]float64, n2)
	o.maskT = make([]bool, n2)
	o.kmt = make([]int, n2)
	o.depth = make([]float64, n2)

	o.dz = make([]float64, o.NL)
	prev := 0.0
	for k := 0; k < o.NL; k++ {
		o.dz[k] = g.LevelDepth[k] - prev
		prev = g.LevelDepth[k]
	}

	// Fill mask/kmt/depth including halos via exchange of encoded fields.
	km := b.Alloc()
	dp := b.Alloc()
	for lj := 0; lj < b.NJ; lj++ {
		for li := 0; li < b.NI; li++ {
			gi := b.GIdx(li, lj)
			km[b.LIdx(li, lj)] = float64(g.KMT[gi])
			dp[b.LIdx(li, lj)] = g.Depth[gi]
		}
	}
	b.Exchange(km)
	b.Exchange(dp)
	for idx := range km {
		o.kmt[idx] = int(km[idx])
		o.depth[idx] = dp[idx]
		o.maskT[idx] = o.kmt[idx] > 0
	}

	// The barotropic subcycle must resolve the external gravity wave
	// (c = √(g·H) ≈ 230 m/s) on the narrowest zonal spacing of the grid —
	// exactly why the production configuration runs 2 s barotropic steps
	// under 20 s baroclinic steps. The substep count adapts upward when the
	// configured ratio would violate the CFL limit.
	dxMin := g.DX[g.NY-1]
	for _, dx := range g.DX {
		if dx < dxMin {
			dxMin = dx
		}
	}
	cWave := math.Sqrt(Gravity * g.LevelDepth[g.NLevel-1])
	need := int(math.Ceil(cfg.DtBaroclinic * cWave / (0.4 * dxMin)))
	if need > o.Cfg.NBarotropicSub {
		o.Cfg.NBarotropicSub = need
	}

	o.InitStratified()
	return o, nil
}

// InitStratified sets the canonical initial condition: an exponential
// thermocline warm at the equator, uniform salinity with a small surface
// anomaly, resting velocities, flat SSH.
func (o *Ocean) InitStratified() {
	for k := 0; k < o.NL; k++ {
		zc := o.G.LevelDepth[k] - o.dz[k]/2
		for lj := -o.B.H; lj < o.B.NJ+o.B.H; lj++ {
			jg := o.B.J0 + lj
			lat := 0.0
			if jg >= 0 && jg < o.G.NY {
				lat = o.G.Lat[jg]
			} else if jg >= o.G.NY {
				lat = o.G.Lat[2*o.G.NY-1-jg]
			} else {
				lat = o.G.Lat[0]
			}
			for li := -o.B.H; li < o.B.NI+o.B.H; li++ {
				idx := o.idx3(0, li, lj) // level 0 offset, then stride
				_ = idx
				i3 := (k*o.LNJ+(lj+o.B.H))*o.LNI + li + o.B.H
				i2 := (lj+o.B.H)*o.LNI + li + o.B.H
				if !o.maskT[i2] {
					continue
				}
				surfT := math.Max(-1, 28*math.Cos(lat)*math.Cos(lat)-2)
				o.T[i3] = -1 + (surfT+1)*math.Exp(-zc/800)
				o.S[i3] = SRef - 0.5*math.Exp(-zc/300)
			}
		}
	}
}

// Rho returns the density anomaly (kg/m³ relative to Rho0) by the linear
// equation of state.
func Rho(t, s float64) float64 {
	return Rho0 * (-AlphaT*(t-TRef) + BetaS*(s-SRef))
}

// Steps returns how many baroclinic steps have run.
func (o *Ocean) Steps() int { return o.steps }

// SetSteps reinstates the step counter from a restart file.
func (o *Ocean) SetSteps(n int) { o.steps = n }

// faceWetU reports whether the U face east of owned cell (li, lj) is wet at
// level k, and faceWetV the face to the north.
func (o *Ocean) faceWetU(k, li, lj int) bool {
	a := (lj+o.B.H)*o.LNI + li + o.B.H
	b := a + 1
	return o.kmt[a] > k && o.kmt[b] > k
}

func (o *Ocean) faceWetV(k, li, lj int) bool {
	// The reproduction closes the northern fold row to mass flux (the halo
	// exchange still feeds gradients and viscosity across it); together with
	// the closed southern boundary this makes tracer transport exactly
	// conservative, which the tests assert.
	if o.B.J0+lj == o.G.NY-1 {
		return false
	}
	a := (lj+o.B.H)*o.LNI + li + o.B.H
	b := a + o.LNI
	return o.kmt[a] > k && o.kmt[b] > k
}

// southClosed reports whether owned row lj sits on the closed southern wall.
func (o *Ocean) southClosed(lj int) bool { return o.B.J0+lj == 0 }

// exchange3D halo-exchanges every level of a 3-D field in one batched call.
// The stepping hot path batches several fields per call instead; this form
// is kept for tests and one-off refreshes.
func (o *Ocean) exchange3D(f []float64, vector bool) {
	s := o.scrEnsure()
	s.ex = append(s.ex[:0], grid.HaloField{Data: f, NLev: o.NL, Vec: vector})
	o.B.ExchangeFields(s.ex)
}
