package ocean

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/par"
	"repro/internal/pp"
	"repro/internal/precision"
)

// testOcean builds a small serial ocean (one rank) for unit tests.
func testOcean(t *testing.T, nx, ny, nl int, cfg Config) *Ocean {
	t.Helper()
	g, err := grid.NewTripolar(nx, ny, nl)
	if err != nil {
		t.Fatal(err)
	}
	var oc *Ocean
	par.Run(1, func(c *par.Comm) {
		b, err := grid.NewTripolarReplicated(g, c, 1)
		if err != nil {
			t.Fatal(err)
		}
		oc, err = New(g, b, cfg, pp.Serial{})
		if err != nil {
			t.Fatal(err)
		}
	})
	return oc
}

// runSerial executes f on a fresh single-rank ocean.
func runSerial(t *testing.T, nx, ny, nl int, cfg Config, f func(o *Ocean)) {
	t.Helper()
	g, err := grid.NewTripolar(nx, ny, nl)
	if err != nil {
		t.Fatal(err)
	}
	par.Run(1, func(c *par.Comm) {
		b, err := grid.NewTripolarReplicated(g, c, 1)
		if err != nil {
			t.Error(err)
			return
		}
		o, err := New(g, b, cfg, pp.Serial{})
		if err != nil {
			t.Error(err)
			return
		}
		f(o)
	})
}

func TestNewValidation(t *testing.T) {
	g, _ := grid.NewTripolar(24, 12, 5)
	par.Run(1, func(c *par.Comm) {
		b, _ := grid.NewTripolarReplicated(g, c, 1)
		bad := DefaultConfig()
		bad.DtBaroclinic = 0
		if _, err := New(g, b, bad, nil); err == nil {
			t.Error("zero dt accepted")
		}
	})
}

func TestInitialStateSane(t *testing.T) {
	runSerial(t, 48, 24, 10, DefaultConfig(), func(o *Ocean) {
		for lj := 0; lj < o.B.NJ; lj++ {
			for li := 0; li < o.B.NI; li++ {
				c := o.idx2(li, lj)
				if !o.maskT[c] {
					if o.T[c] != 0 {
						t.Fatal("land cell has temperature")
					}
					continue
				}
				if o.T[c] < -3 || o.T[c] > 32 {
					t.Fatalf("surface T = %v out of range", o.T[c])
				}
				// Stratification: deepest active level colder than surface.
				kb := o.kmt[c] - 1
				if kb > 0 {
					n2 := o.LNI * o.LNJ
					if o.T[kb*n2+c] > o.T[c]+1e-9 {
						t.Fatalf("unstable initial stratification at (%d,%d)", li, lj)
					}
				}
			}
		}
	})
}

func TestRestingOceanStaysAtRest(t *testing.T) {
	// With no forcing, a horizontally-uniform... the analytic init varies
	// with latitude, so currents develop; but with zero wind and flat SSH the
	// first step's barotropic velocities stay tiny, and no NaNs appear.
	runSerial(t, 48, 24, 8, DefaultConfig(), func(o *Ocean) {
		for s := 0; s < 5; s++ {
			o.Step()
		}
		if o.Steps() != 5 {
			t.Fatalf("steps = %d", o.Steps())
		}
		if v := o.MaxSurfaceSpeed(); math.IsNaN(v) || v > 5 {
			t.Fatalf("max speed %v after 5 unforced steps", v)
		}
	})
}

func TestTracerConservationWithoutForcing(t *testing.T) {
	cfg := DefaultConfig()
	runSerial(t, 48, 24, 8, cfg, func(o *Ocean) {
		t0 := o.TracerContent(o.T)
		s0 := o.TracerContent(o.S)
		// Spin up some flow with wind so advection is non-trivial.
		for lj := 0; lj < o.B.NJ; lj++ {
			for li := 0; li < o.B.NI; li++ {
				o.TauX[o.idx2(li, lj)] = 0.1
			}
		}
		for s := 0; s < 10; s++ {
			o.Step()
		}
		t1 := o.TracerContent(o.T)
		s1 := o.TracerContent(o.S)
		if rel := math.Abs(t1-t0) / math.Abs(t0); rel > 1e-12 {
			t.Errorf("heat content drift %.3e", rel)
		}
		if rel := math.Abs(s1-s0) / math.Abs(s0); rel > 1e-12 {
			t.Errorf("salt content drift %.3e", rel)
		}
	})
}

func TestVolumeConservation(t *testing.T) {
	runSerial(t, 48, 24, 8, DefaultConfig(), func(o *Ocean) {
		m0 := o.MeanSSH()
		for lj := 0; lj < o.B.NJ; lj++ {
			for li := 0; li < o.B.NI; li++ {
				o.TauX[o.idx2(li, lj)] = 0.08
				o.TauY[o.idx2(li, lj)] = -0.03
			}
		}
		for s := 0; s < 10; s++ {
			o.Step()
		}
		m1 := o.MeanSSH()
		if math.Abs(m1-m0) > 1e-9 {
			t.Errorf("mean SSH drifted %v -> %v", m0, m1)
		}
	})
}

func TestSurfaceHeatingWarmsOcean(t *testing.T) {
	runSerial(t, 48, 24, 6, DefaultConfig(), func(o *Ocean) {
		t0 := o.TracerContent(o.T)
		for lj := 0; lj < o.B.NJ; lj++ {
			for li := 0; li < o.B.NI; li++ {
				o.QHeat[o.idx2(li, lj)] = 200 // W/m²
			}
		}
		for s := 0; s < 5; s++ {
			o.Step()
		}
		t1 := o.TracerContent(o.T)
		if t1 <= t0 {
			t.Errorf("heat content did not rise: %v -> %v", t0, t1)
		}
		// Energy bookkeeping: dHeat = Q·A_wet·dt/(rho0·cp) in tracer units.
		var wetArea float64
		for lj := 0; lj < o.B.NJ; lj++ {
			jg := o.B.J0 + lj
			for li := 0; li < o.B.NI; li++ {
				if o.maskT[o.idx2(li, lj)] {
					wetArea += o.G.DX[jg] * o.G.DY
				}
			}
		}
		want := 200 * wetArea * 5 * o.Cfg.DtBaroclinic / (Rho0 * Cp)
		got := t1 - t0
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("heating bookkeeping: got %v, want %v", got, want)
		}
	})
}

func TestWindDrivesCurrents(t *testing.T) {
	runSerial(t, 48, 24, 6, DefaultConfig(), func(o *Ocean) {
		ke0 := o.SurfaceKineticEnergy()
		for lj := 0; lj < o.B.NJ; lj++ {
			for li := 0; li < o.B.NI; li++ {
				o.TauX[o.idx2(li, lj)] = 0.1
			}
		}
		for s := 0; s < 10; s++ {
			o.Step()
		}
		ke1 := o.SurfaceKineticEnergy()
		if ke1 <= ke0 {
			t.Errorf("wind did not energize: %v -> %v", ke0, ke1)
		}
		if v := o.MaxSurfaceSpeed(); v > 10 || math.IsNaN(v) {
			t.Errorf("unstable: max speed %v", v)
		}
	})
}

func TestStabilityLongerRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long run")
	}
	runSerial(t, 72, 36, 10, DefaultConfig(), func(o *Ocean) {
		for lj := 0; lj < o.B.NJ; lj++ {
			jg := o.B.J0 + lj
			for li := 0; li < o.B.NI; li++ {
				// Idealized zonal wind pattern (trades/westerlies).
				o.TauX[o.idx2(li, lj)] = -0.1 * math.Cos(3*o.G.Lat[jg])
			}
		}
		for s := 0; s < 50; s++ {
			o.Step()
		}
		if v := o.MaxSurfaceSpeed(); math.IsNaN(v) || v > 10 {
			t.Fatalf("max speed %v after 50 steps", v)
		}
		// Something moves.
		if o.SurfaceKineticEnergy() <= 0 {
			t.Fatal("no circulation developed")
		}
	})
}

// The distributed run must agree with the serial run: same grid, same
// forcing, different process layouts.
func TestSerialParallelEquivalence(t *testing.T) {
	g, err := grid.NewTripolar(24, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DtBaroclinic = 600

	run := func(px, py int) (tGlob, etaGlob []float64) {
		par.Run(px*py, func(c *par.Comm) {
			b, err := grid.NewTripolarDecompLayout(g, c, px, py, 1)
			if err != nil {
				t.Error(err)
				return
			}
			o, err := New(g, b, cfg, pp.Serial{})
			if err != nil {
				t.Error(err)
				return
			}
			for lj := 0; lj < b.NJ; lj++ {
				for li := 0; li < b.NI; li++ {
					gi := b.GIdx(li, lj)
					o.TauX[o.idx2(li, lj)] = 0.05 * math.Sin(float64(gi))
				}
			}
			for s := 0; s < 3; s++ {
				o.Step()
			}
			tg := o.GatherSurface(o.T[:o.LNI*o.LNJ])
			eg := o.GatherSurface(o.Eta)
			if c.Rank() == 0 {
				tGlob, etaGlob = tg, eg
			}
		})
		return
	}
	tRef, eRef := run(1, 1)
	for _, layout := range [][2]int{{2, 2}, {4, 1}, {2, 3}} {
		tGot, eGot := run(layout[0], layout[1])
		for i := range tRef {
			if math.Abs(tGot[i]-tRef[i]) > 1e-11 {
				t.Fatalf("layout %v: T[%d] = %v vs serial %v", layout, i, tGot[i], tRef[i])
			}
			if math.Abs(eGot[i]-eRef[i]) > 1e-11 {
				t.Fatalf("layout %v: eta[%d] = %v vs serial %v", layout, i, eGot[i], eRef[i])
			}
		}
	}
}

// §5.2.2: the compacted sweep must produce identical results to the full
// sweep while doing ~30 % less work.
func TestCompactionConsistency(t *testing.T) {
	runSerial(t, 72, 36, 20, DefaultConfig(), func(o *Ocean) {
		for lj := 0; lj < o.B.NJ; lj++ {
			for li := 0; li < o.B.NI; li++ {
				o.TauX[o.idx2(li, lj)] = 0.1
			}
		}
		for s := 0; s < 3; s++ {
			o.Step() // develop structure
		}
		o.exchange3D(o.T, false)
		o.exchange3D(o.U, true)
		o.exchange3D(o.V, true)

		full := o.advectDiffuse(o.T, o.Cfg.DtBaroclinic, o.QHeat, o.surfTDen())
		comp := o.Compact().AdvectDiffuse(o.T, o.Cfg.DtBaroclinic, o.QHeat, o.surfTDen())
		for i := range full {
			if full[i] != comp[i] {
				t.Fatalf("compacted result differs at %d: %v vs %v", i, comp[i], full[i])
			}
		}
	})
}

func TestCompactionSavings(t *testing.T) {
	runSerial(t, 144, 72, 30, DefaultConfig(), func(o *Ocean) {
		c := o.Compact()
		if c.NWet() == 0 {
			t.Fatal("no wet columns")
		}
		s2 := c.WorkSaving()
		s3 := c.WorkSaving3D()
		// Surface land fraction ~29 %, 3-D saving a bit larger.
		if s2 < 0.2 || s2 > 0.45 {
			t.Errorf("2-D saving %.3f", s2)
		}
		if s3 < s2 || s3 > 0.5 {
			t.Errorf("3-D saving %.3f (2-D %.3f)", s3, s2)
		}
	})
	g, _ := grid.NewTripolar(144, 72, 30)
	if s := ResourceSaving(g); s < 0.25 || s > 0.45 {
		t.Errorf("resource saving %.3f, paper ~0.30", s)
	}
}

func TestBalancedOwnerImprovesLoadBalance(t *testing.T) {
	g, _ := grid.NewTripolar(96, 48, 20)
	const p = 16
	block, err := BlockOwner(g, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	bal := BalancedOwner(g, p)
	ibBlock := block.LoadImbalance(g)
	ibBal := bal.LoadImbalance(g)
	if ibBal >= ibBlock {
		t.Errorf("balanced imbalance %.3f not better than block %.3f", ibBal, ibBlock)
	}
	if ibBal > 1.25 {
		t.Errorf("balanced imbalance %.3f too high", ibBal)
	}
	// Every wet column owned, every land column unowned.
	for idx, pe := range bal.Owner {
		if (g.KMT[idx] > 0) != (pe >= 0) {
			t.Fatalf("ownership/mask mismatch at %d", idx)
		}
		if pe >= p {
			t.Fatalf("rank %d out of range", pe)
		}
	}
}

func TestHaloNeighborsSymmetricAndSmall(t *testing.T) {
	g, _ := grid.NewTripolar(96, 48, 10)
	co := BalancedOwner(g, 12)
	nb := co.HaloNeighbors(g)
	for a, list := range nb {
		for _, b := range list {
			found := false
			for _, back := range nb[b] {
				if back == a {
					found = true
				}
			}
			if !found {
				t.Fatalf("asymmetric neighbour relation %d -> %d", a, b)
			}
			if b == a {
				t.Fatal("self neighbour")
			}
		}
	}
	// Snake ordering keeps the communication graph sparse: average degree
	// far below all-to-all.
	total := 0
	for _, list := range nb {
		total += len(list)
	}
	if avg := float64(total) / 12; avg > 8 {
		t.Errorf("average neighbour degree %.1f too high", avg)
	}
}

func TestBlockOwnerValidation(t *testing.T) {
	g, _ := grid.NewTripolar(96, 48, 10)
	if _, err := BlockOwner(g, 5, 1); err == nil {
		t.Error("non-divisible layout accepted")
	}
}

// §5.2.3: mixed precision tracks the FP64 baseline within the paper's
// reported RMSD magnitudes.
func TestMixedPrecisionRMSD(t *testing.T) {
	run := func(pol precision.Policy) (tt, ss, ee, area []float64, mask []bool) {
		g, _ := grid.NewTripolar(48, 24, 6)
		par.Run(1, func(c *par.Comm) {
			b, _ := grid.NewTripolarReplicated(g, c, 1)
			cfg := DefaultConfig()
			cfg.Policy = pol
			o, _ := New(g, b, cfg, pp.Serial{})
			for lj := 0; lj < b.NJ; lj++ {
				for li := 0; li < b.NI; li++ {
					o.TauX[o.idx2(li, lj)] = 0.1
				}
			}
			for s := 0; s < 20; s++ {
				o.Step()
			}
			tt = o.surfaceOwned(o.T)
			ss = o.surfaceOwned(o.S)
			ee = o.surfaceOwned(o.Eta)
			mask = make([]bool, len(tt))
			area = make([]float64, len(tt))
			for lj := 0; lj < b.NJ; lj++ {
				jg := b.J0 + lj
				for li := 0; li < b.NI; li++ {
					mask[lj*b.NI+li] = o.maskT[o.idx2(li, lj)]
					area[lj*b.NI+li] = g.DX[jg] * g.DY
				}
			}
		})
		return
	}
	t64, s64, e64, area, mask := run(precision.FP64)
	t32, s32, e32, _, _ := run(precision.Mixed)

	rmsdT, err := precision.MaskedAreaRMSD(t32, t64, area, mask)
	if err != nil {
		t.Fatal(err)
	}
	rmsdS, _ := precision.MaskedAreaRMSD(s32, s64, area, mask)
	rmsdE, _ := precision.MaskedAreaRMSD(e32, e64, area, mask)
	th := precision.PaperThresholds()
	if rmsdT > th.OceanTempC {
		t.Errorf("T RMSD %.4g exceeds paper's %.4g", rmsdT, th.OceanTempC)
	}
	if rmsdS > th.OceanSaltPSU {
		t.Errorf("S RMSD %.4g exceeds paper's %.4g", rmsdS, th.OceanSaltPSU)
	}
	if rmsdE > th.OceanSSHm {
		t.Errorf("SSH RMSD %.4g exceeds paper's %.4g", rmsdE, th.OceanSSHm)
	}
	// The mixed run must actually differ (it really ran in FP32).
	same := true
	for i := range t64 {
		if t32[i] != t64[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("mixed-precision run identical to FP64 — quantization did not happen")
	}
}

func TestSurfaceRossbyFiniteAndMasked(t *testing.T) {
	runSerial(t, 48, 24, 6, DefaultConfig(), func(o *Ocean) {
		for lj := 0; lj < o.B.NJ; lj++ {
			for li := 0; li < o.B.NI; li++ {
				o.TauX[o.idx2(li, lj)] = 0.1
			}
		}
		for s := 0; s < 5; s++ {
			o.Step()
		}
		ro := o.SurfaceRossby()
		if len(ro) != o.B.NJ*o.B.NI {
			t.Fatal("wrong size")
		}
		for i, v := range ro {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("Ro[%d] = %v", i, v)
			}
		}
	})
}

func TestRhoEOS(t *testing.T) {
	if Rho(TRef, SRef) != 0 {
		t.Error("reference density not zero anomaly")
	}
	if Rho(TRef+1, SRef) >= 0 {
		t.Error("warmer water must be lighter")
	}
	if Rho(TRef, SRef+1) <= 0 {
		t.Error("saltier water must be denser")
	}
}

func TestOceanPPBackendEquivalence(t *testing.T) {
	run := func(sp pp.Space) []float64 {
		var out []float64
		g, _ := grid.NewTripolar(48, 24, 5)
		par.Run(1, func(c *par.Comm) {
			b, _ := grid.NewTripolarReplicated(g, c, 1)
			o, _ := New(g, b, DefaultConfig(), sp)
			for lj := 0; lj < b.NJ; lj++ {
				for li := 0; li < b.NI; li++ {
					o.TauX[o.idx2(li, lj)] = 0.07
				}
			}
			for s := 0; s < 3; s++ {
				o.Step()
			}
			out = o.surfaceOwned(o.T)
		})
		return out
	}
	ref := run(pp.Serial{})
	for _, sp := range []pp.Space{pp.NewHost(4), pp.NewCPE(8)} {
		got := run(sp)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s: T[%d] = %v vs serial %v", sp.Name(), i, got[i], ref[i])
			}
		}
	}
}
