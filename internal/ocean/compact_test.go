package ocean

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/par"
	"repro/internal/pp"
)

// The compaction maps must compose with the 2-D block partition: per-block
// packed indices round-trip through the full local offset and the global
// column index, land never gets a slot, and the packed views of all ranks
// scatter back into exactly one global surface field — including when
// land-block elimination removes a block from the layout entirely.
func TestCompactionComposesWithBlockPartition(t *testing.T) {
	cases := []struct {
		name     string
		ranks    int
		dryBlock bool
	}{
		{"full-2x2", 4, false},
		{"eliminated-block-2x2", 3, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := grid.NewTripolar(48, 24, 6)
			if err != nil {
				t.Fatal(err)
			}
			if tc.dryBlock {
				// Dry out block (0,0) of the 2x2 layout.
				for j := 0; j < 12; j++ {
					for i := 0; i < 24; i++ {
						gi := j*g.NX + i
						g.Mask[gi] = false
						g.KMT[gi] = 0
						g.Depth[gi] = 0
					}
				}
			}
			par.Run(tc.ranks, func(c *par.Comm) {
				b, err := grid.NewTripolarDecompLayout(g, c, 2, 2, 1)
				if err != nil {
					t.Error(err)
					return
				}
				o, err := New(g, b, DefaultConfig(), pp.Serial{})
				if err != nil {
					t.Error(err)
					return
				}
				comp := o.Compact()
				f2c := comp.FullToCompact()
				c2g := comp.CompactToGlobal()

				// Round trip: packed slot -> global column -> owning rank and
				// local offset -> the same packed slot.
				for ci, gi := range c2g {
					if pe := b.Owner(gi); pe != c.Rank() {
						t.Fatalf("packed slot %d holds global %d owned by rank %d", ci, gi, pe)
					}
					li, lj := gi%g.NX-b.I0, gi/g.NX-b.J0
					if back := f2c[lj*b.NI+li]; back != ci {
						t.Fatalf("slot %d -> global %d -> slot %d", ci, gi, back)
					}
				}
				// Land never gets a slot; every wet owned cell does.
				for lj := 0; lj < b.NJ; lj++ {
					for li := 0; li < b.NI; li++ {
						wet := g.KMT[b.GIdx(li, lj)] > 0
						if (f2c[lj*b.NI+li] >= 0) != wet {
							t.Fatalf("compact map/mask mismatch at local (%d,%d)", li, lj)
						}
					}
				}

				// All ranks' packed surface temperatures scatter into one
				// global field that matches the gathered full field.
				scatter := make([]float64, g.NX*g.NY)
				for ci, gi := range c2g {
					cl := comp.cols[ci]
					scatter[gi] = o.T[o.idx2(cl[0], cl[1])]
				}
				global := c.AllreduceSlice(scatter, par.OpSum)
				ref := o.GatherSurface(o.T[:o.LNI*o.LNJ])
				if c.Rank() == 0 {
					for gi := range ref {
						if g.KMT[gi] == 0 {
							if global[gi] != 0 {
								t.Fatalf("land column %d scattered %v", gi, global[gi])
							}
							continue
						}
						if global[gi] != ref[gi] {
							t.Fatalf("scattered T at %d = %v, gathered %v", gi, global[gi], ref[gi])
						}
					}
				}
			})
		})
	}
}
