package ocean

import (
	"math"
	"testing"
)

func TestPP81DiffusivityShape(t *testing.T) {
	mc := DefaultMixing()
	// Fully stable: background only.
	if kv := mc.InterfaceDiffusivity(math.Inf(1)); kv != mc.Background {
		t.Errorf("stable kv = %v", kv)
	}
	// Convective: maximum.
	if kv := mc.InterfaceDiffusivity(-0.5); kv != mc.KV0+mc.Background {
		t.Errorf("convective kv = %v", kv)
	}
	// Monotone decreasing in Ri.
	prev := math.Inf(1)
	for _, ri := range []float64{0, 0.1, 0.25, 1, 5, 100} {
		kv := mc.InterfaceDiffusivity(ri)
		if kv > prev {
			t.Fatalf("kv not monotone at Ri=%v", ri)
		}
		if kv < mc.Background {
			t.Fatalf("kv below background at Ri=%v", ri)
		}
		prev = kv
	}
	// PP81 magnitude: at Ri=0 the full KV0 is active.
	if kv := mc.InterfaceDiffusivity(0); math.Abs(kv-(mc.KV0+mc.Background)) > 1e-12 {
		t.Errorf("Ri=0 kv = %v", kv)
	}
}

func TestRichardsonNumberPhysics(t *testing.T) {
	runSerial(t, 48, 24, 8, DefaultConfig(), func(o *Ocean) {
		// Find a deep wet column.
		var c, li, lj int
		found := false
		for lj = 0; lj < o.B.NJ && !found; lj++ {
			for li = 0; li < o.B.NI; li++ {
				c = o.idx2(li, lj)
				if o.kmt[c] >= 5 {
					found = true
					break
				}
			}
		}
		if !found {
			t.Skip("no deep column")
		}
		n2 := o.LNI * o.LNJ
		// Initial stratified resting state: stable, no shear -> Ri = +Inf.
		if ri := o.RichardsonNumber(c, 1); !math.IsInf(ri, 1) {
			t.Errorf("resting Ri = %v, want +Inf", ri)
		}
		// Add strong shear: Ri becomes small and positive.
		o.U[0*n2+c] = 1.0
		o.U[1*n2+c] = -1.0
		ri := o.RichardsonNumber(c, 1)
		if math.IsInf(ri, 1) || ri < 0 {
			t.Errorf("sheared Ri = %v", ri)
		}
		// Invert the stratification: Ri negative (convective).
		o.T[0*n2+c], o.T[1*n2+c] = o.T[1*n2+c]-5, o.T[0*n2+c]+5
		if ri := o.RichardsonNumber(c, 1); ri >= 0 {
			t.Errorf("inverted-column Ri = %v, want negative", ri)
		}
	})
}

func TestRiMixingConservesAndMixes(t *testing.T) {
	runSerial(t, 48, 24, 8, DefaultConfig(), func(o *Ocean) {
		n2 := o.LNI * o.LNJ
		// Shear everywhere to activate mixing.
		for lj := 0; lj < o.B.NJ; lj++ {
			for li := 0; li < o.B.NI; li++ {
				c := o.idx2(li, lj)
				if o.kmt[c] >= 2 {
					o.U[c] = 0.8
					o.U[n2+c] = -0.8
				}
			}
		}
		t0 := o.TracerContent(o.T)
		s0 := o.TracerContent(o.S)
		// Measure a strongly stratified column's surface-bottom contrast.
		var c int
		for lj := 0; lj < o.B.NJ; lj++ {
			for li := 0; li < o.B.NI; li++ {
				cc := o.idx2(li, lj)
				if o.kmt[cc] >= 6 {
					c = cc
				}
			}
		}
		before := o.T[c] - o.T[n2+c]
		cols := o.ApplyRiMixing(DefaultMixing(), o.Cfg.DtBaroclinic)
		if cols == 0 {
			t.Fatal("no columns mixed")
		}
		after := o.T[c] - o.T[n2+c]
		if math.Abs(after) > math.Abs(before) {
			t.Errorf("mixing sharpened the gradient: %v -> %v", before, after)
		}
		// Exact conservation.
		if rel := math.Abs(o.TracerContent(o.T)-t0) / math.Abs(t0); rel > 1e-13 {
			t.Errorf("heat content drift %.2e", rel)
		}
		if rel := math.Abs(o.TracerContent(o.S)-s0) / math.Abs(s0); rel > 1e-13 {
			t.Errorf("salt content drift %.2e", rel)
		}
	})
}

func TestDiffusivityProfileShape(t *testing.T) {
	runSerial(t, 48, 24, 8, DefaultConfig(), func(o *Ocean) {
		for lj := 0; lj < o.B.NJ; lj++ {
			for li := 0; li < o.B.NI; li++ {
				c := o.idx2(li, lj)
				prof := o.DiffusivityProfile(DefaultMixing(), li, lj)
				if o.kmt[c] < 2 {
					if prof != nil {
						t.Fatal("profile on land/shallow column")
					}
					continue
				}
				if len(prof) != o.kmt[c]-1 {
					t.Fatalf("profile length %d for kmt %d", len(prof), o.kmt[c])
				}
				for _, kv := range prof {
					if kv <= 0 || math.IsNaN(kv) {
						t.Fatal("bad diffusivity")
					}
				}
			}
		}
	})
}

func TestRiMixingIntegratedInStep(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RiMixing = true
	runSerial(t, 48, 24, 8, cfg, func(o *Ocean) {
		t0 := o.TracerContent(o.T)
		for lj := 0; lj < o.B.NJ; lj++ {
			for li := 0; li < o.B.NI; li++ {
				o.TauX[o.idx2(li, lj)] = 0.15
			}
		}
		for s := 0; s < 10; s++ {
			o.Step()
		}
		if v := o.MaxSurfaceSpeed(); math.IsNaN(v) || v > 10 {
			t.Fatalf("unstable with Ri mixing: %v", v)
		}
		// Transport + mixing still conserve exactly (no surface forcing on T).
		if rel := math.Abs(o.TracerContent(o.T)-t0) / math.Abs(t0); rel > 1e-12 {
			t.Errorf("heat drift %.2e with Ri mixing", rel)
		}
	})
}
