package ocean

import (
	"fmt"
	"sort"

	"repro/internal/grid"
)

// This file implements the §5.2.2 optimization: excluding 3-D non-ocean
// grid points. Three pieces reproduce the paper's pipeline:
//
//  1. a compacted wet-column sweep that runs the same tracer kernel over a
//     packed index list instead of the full rectangle (bit-identical
//     results, ~30 % less work at the real ocean fraction);
//  2. a wet-point-balanced rank remapping replacing the naive block
//     decomposition;
//  3. the rebuilt halo communication topology (which ranks actually
//     exchange boundaries after remapping).

// Compacted is the packed wet-column view of one rank's block.
type Compacted struct {
	o    *Ocean
	cols [][2]int // (li, lj) of each owned wet column
}

// Compact builds the packed wet-column list for the ocean's block.
func (o *Ocean) Compact() *Compacted {
	c := &Compacted{o: o}
	for lj := 0; lj < o.B.NJ; lj++ {
		for li := 0; li < o.B.NI; li++ {
			if o.maskT[o.idx2(li, lj)] {
				c.cols = append(c.cols, [2]int{li, lj})
			}
		}
	}
	return c
}

// NWet returns the number of packed wet columns.
func (c *Compacted) NWet() int { return len(c.cols) }

// FullToCompact returns the per-block index map from an owned cell's
// row-major offset (lj*NI + li) to its packed wet-column slot, or -1 for
// land. Composed with the 2-D block partition — global column → owning
// block via TripolarDecomp.Owner, then local offset, then this map — it
// addresses the packed storage of any rank, which is what lets compaction
// and the block decomposition coexist (§5.2.2 under the §5.1 partition).
func (c *Compacted) FullToCompact() []int {
	out := make([]int, c.o.B.NI*c.o.B.NJ)
	for i := range out {
		out[i] = -1
	}
	for ci, cl := range c.cols {
		out[cl[1]*c.o.B.NI+cl[0]] = ci
	}
	return out
}

// CompactToGlobal returns, per packed wet-column slot, the global surface
// column index (jg*NX + ig) the slot holds — the inverse direction of
// FullToCompact lifted to global coordinates, so packed data from different
// blocks can be scattered back into one global field.
func (c *Compacted) CompactToGlobal() []int {
	out := make([]int, len(c.cols))
	for ci, cl := range c.cols {
		out[ci] = c.o.B.GIdx(cl[0], cl[1])
	}
	return out
}

// WorkSaving returns the fraction of per-column sweep iterations the
// compaction removes on this block (land columns skipped entirely).
func (c *Compacted) WorkSaving() float64 {
	total := c.o.B.NI * c.o.B.NJ
	if total == 0 {
		return 0
	}
	return 1 - float64(len(c.cols))/float64(total)
}

// WorkSaving3D returns the 3-D work saving including bathymetry: active
// (column, level) pairs over the full cuboid.
func (c *Compacted) WorkSaving3D() float64 {
	active := 0
	for _, cl := range c.cols {
		active += c.o.kmt[c.o.idx2(cl[0], cl[1])]
	}
	total := c.o.B.NI * c.o.B.NJ * c.o.NL
	if total == 0 {
		return 0
	}
	return 1 - float64(active)/float64(total)
}

// AdvectDiffuse runs the identical tracer kernel over the packed columns
// only. Results are bit-identical to Ocean.advectDiffuse because the same
// per-column update (advectColumn, the single kernel source) runs on the
// same inputs; land cells hold zeros in both. surf/surfDen are the surface
// forcing field and its constant denominator, as in advectDiffuse.
func (c *Compacted) AdvectDiffuse(tr []float64, dt float64, surf []float64, surfDen float64) []float64 {
	out := make([]float64, len(tr))
	copy(out, tr)
	// A private copy of the bound bundle: the packed sweep must not race the
	// stepping hot path's argument state.
	a := *c.o.scrEnsure().adv
	a.tr, a.out, a.dt = tr, out, dt
	a.u, a.v = c.o.U, c.o.V
	a.surf, a.surfDen = surf, surfDen
	c.o.Sp.ParallelFor(len(c.cols), func(i int) {
		cl := c.cols[i]
		advectColumn(&a, cl[0], cl[1])
	})
	return out
}

// TracerSweepFull runs one full-rectangle tracer sweep on the current
// state — the pre-optimization kernel, exposed for the §5.2.2 benchmark.
func (o *Ocean) TracerSweepFull() []float64 {
	return o.advectDiffuse(o.T, o.Cfg.DtBaroclinic, o.QHeat, o.surfTDen())
}

// TracerSweepCompact runs the same sweep over packed wet columns only.
func (o *Ocean) TracerSweepCompact(c *Compacted) []float64 {
	return c.AdvectDiffuse(o.T, o.Cfg.DtBaroclinic, o.QHeat, o.surfTDen())
}

// --- Rank remapping ---

// ColumnOwner maps every global surface column to a rank.
type ColumnOwner struct {
	NRanks int
	Owner  []int // [NY*NX], -1 for land columns under the balanced mapping
}

// BlockOwner is the naive pre-optimization decomposition: rectangular
// blocks over the full grid, land included.
func BlockOwner(g *grid.Tripolar, px, py int) (*ColumnOwner, error) {
	if g.NX%px != 0 || g.NY%py != 0 {
		return nil, fmt.Errorf("ocean: %dx%d grid not divisible by %dx%d", g.NX, g.NY, px, py)
	}
	co := &ColumnOwner{NRanks: px * py, Owner: make([]int, g.NX*g.NY)}
	bi, bj := g.NX/px, g.NY/py
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			co.Owner[j*g.NX+i] = (j/bj)*px + i/bi
		}
	}
	return co, nil
}

// BalancedOwner is the §5.2.2 remapping: land columns are removed, and the
// wet columns — weighted by their active level count — are distributed over
// ranks in row-major snake order so each rank gets a contiguous, equal
// share of the 3-D work.
func BalancedOwner(g *grid.Tripolar, nranks int) *ColumnOwner {
	co := &ColumnOwner{NRanks: nranks, Owner: make([]int, g.NX*g.NY)}
	for i := range co.Owner {
		co.Owner[i] = -1
	}
	var totalWork int64
	for _, k := range g.KMT {
		totalWork += int64(k)
	}
	perRank := float64(totalWork) / float64(nranks)
	var acc float64
	rank := 0
	for j := 0; j < g.NY; j++ {
		for ii := 0; ii < g.NX; ii++ {
			i := ii
			if j%2 == 1 {
				i = g.NX - 1 - ii // snake order keeps ranks spatially compact
			}
			idx := j*g.NX + i
			if g.KMT[idx] == 0 {
				continue
			}
			co.Owner[idx] = rank
			acc += float64(g.KMT[idx])
			if acc >= perRank*float64(rank+1) && rank < nranks-1 {
				rank++
			}
		}
	}
	return co
}

// LoadImbalance returns max/mean active 3-D points per rank (1 = perfect).
// Ranks with zero work count toward the mean, reproducing the waste the
// naive block decomposition suffers over land.
func (co *ColumnOwner) LoadImbalance(g *grid.Tripolar) float64 {
	work := make([]int64, co.NRanks)
	for idx, pe := range co.Owner {
		if pe >= 0 {
			work[pe] += int64(g.KMT[idx])
		}
	}
	var max, sum int64
	for _, w := range work {
		sum += w
		if w > max {
			max = w
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(co.NRanks)
	return float64(max) / mean
}

// HaloNeighbors rebuilds the communication topology after remapping: for
// each rank, the sorted set of other ranks owning columns adjacent (4-way,
// with zonal periodicity) to its columns. The result feeds par.NewGraph.
func (co *ColumnOwner) HaloNeighbors(g *grid.Tripolar) [][]int {
	sets := make([]map[int]bool, co.NRanks)
	for i := range sets {
		sets[i] = make(map[int]bool)
	}
	link := func(a, b int) {
		if a >= 0 && b >= 0 && a != b {
			sets[a][b] = true
			sets[b][a] = true
		}
	}
	for j := 0; j < g.NY; j++ {
		for i := 0; i < g.NX; i++ {
			me := co.Owner[j*g.NX+i]
			link(me, co.Owner[j*g.NX+(i+1)%g.NX])
			if j+1 < g.NY {
				link(me, co.Owner[(j+1)*g.NX+i])
			}
		}
	}
	out := make([][]int, co.NRanks)
	for pe, set := range sets {
		for n := range set {
			out[pe] = append(out[pe], n)
		}
		sort.Ints(out[pe])
	}
	return out
}

// ResourceSaving compares total rank-work capacity needed by the balanced
// mapping against the block mapping at equal per-rank capacity: with land
// removed, the same simulation fits in ~30 % fewer ranks (§5.2.2). It
// returns 1 − wet/total 3-D points, the paper's accounting.
func ResourceSaving(g *grid.Tripolar) float64 {
	active, total := g.ActivePoints3D()
	return 1 - float64(active)/float64(total)
}
