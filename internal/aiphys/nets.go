package aiphys

import (
	"fmt"
	"math"
	"math/rand"
)

// TendencyNet is the AI tendency module (§5.2.1): an 11-layer deep 1-D CNN
// comprising five residual units, convolving along the vertical column. It
// maps the five input fields (U, V, T, Q, P) to the four tendency fields
// (dU, dV, dT, dQ). With Width = 110 the trainable parameter count is
// ≈ 5×10⁵, the paper's figure; the default training configuration uses a
// narrower net for laptop-scale throughput.
type TendencyNet struct {
	Width  int
	NLev   int
	InC    int // 5: U, V, T, Q, P
	OutC   int // 4: dU, dV, dT, dQ
	Params *ParamSet

	// layer handles into Params: input conv, 5 res units × 2 convs, output conv.
	inW, inB   int
	resW, resB [][2]int
	outW, outB int
}

// NewTendencyNet builds the CNN with He-initialized weights.
func NewTendencyNet(width, nlev int, rng *rand.Rand) *TendencyNet {
	n := &TendencyNet{Width: width, NLev: nlev, InC: 5, OutC: 4, Params: NewParamSet()}
	n.inW = n.Params.Add(width*n.InC*3, heScale(n.InC*3), rng)
	n.inB = n.Params.Add(width, 0, rng)
	for u := 0; u < 5; u++ {
		var unit [2]int
		var unitB [2]int
		for j := 0; j < 2; j++ {
			unit[j] = n.Params.Add(width*width*3, heScale(width*3), rng)
			unitB[j] = n.Params.Add(width, 0, rng)
		}
		n.resW = append(n.resW, unit)
		n.resB = append(n.resB, unitB)
	}
	n.outW = n.Params.Add(n.OutC*width*3, heScale(width*3), rng)
	n.outB = n.Params.Add(n.OutC, 0, rng)
	return n
}

// NumLayers returns the deep-CNN layer count — the input convolution plus
// the five residual units' ten convolutions (the paper's "11-layer deep
// CNN"); the linear output projection head is not counted.
func (n *TendencyNet) NumLayers() int { return 1 + 5*2 }

// tendencyTape records forward activations for backprop.
type tendencyTape struct {
	x       *Seq
	h0      *Seq
	m0      []bool
	resIn   []*Seq
	resMid  []*Seq
	resMask [][]bool // post-first-conv ReLU masks
	outMask []bool
	sum     []*Seq // res unit outputs after skip add + relu
}

// Forward runs the CNN on one column; tape is non-nil when training.
func (n *TendencyNet) Forward(x *Seq, tape *tendencyTape) *Seq {
	p := n.Params
	h := Conv1D(x, p.Val(n.inW), p.Val(n.inB), n.Width)
	m0 := ReLU(h.Data)
	if tape != nil {
		tape.x = x
		tape.h0 = h
		tape.m0 = m0
	}
	for u := 0; u < 5; u++ {
		in := h
		mid := Conv1D(in, p.Val(n.resW[u][0]), p.Val(n.resB[u][0]), n.Width)
		mask := ReLU(mid.Data)
		out := Conv1D(mid, p.Val(n.resW[u][1]), p.Val(n.resB[u][1]), n.Width)
		for i := range out.Data {
			out.Data[i] += in.Data[i] // residual skip
		}
		if tape != nil {
			tape.resIn = append(tape.resIn, in)
			tape.resMid = append(tape.resMid, mid)
			tape.resMask = append(tape.resMask, mask)
			tape.sum = append(tape.sum, out)
		}
		h = out
	}
	y := Conv1D(h, p.Val(n.outW), p.Val(n.outB), n.OutC)
	return y
}

// Backward propagates dy through the tape, accumulating gradients.
func (n *TendencyNet) Backward(tape *tendencyTape, dy *Seq) {
	p := n.Params
	h := tape.sum[4]
	dh := conv1DBackward(h, p.Val(n.outW), n.OutC, dy, p.Grad(n.outW), p.Grad(n.outB))
	for u := 4; u >= 0; u-- {
		// Through the skip: gradient flows both into the branch and past it.
		dmid := conv1DBackward(tape.resMid[u], p.Val(n.resW[u][1]), n.Width, dh, p.Grad(n.resW[u][1]), p.Grad(n.resB[u][1]))
		reluBackward(dmid.Data, tape.resMask[u])
		din := conv1DBackward(tape.resIn[u], p.Val(n.resW[u][0]), n.Width, dmid, p.Grad(n.resW[u][0]), p.Grad(n.resB[u][0]))
		for i := range din.Data {
			din.Data[i] += dh.Data[i] // skip path
		}
		dh = din
	}
	reluBackward(dh.Data, tape.m0)
	conv1DBackward(tape.x, p.Val(n.inW), n.Width, dh, p.Grad(n.inW), p.Grad(n.inB))
}

// RadiationNet is the AI radiation diagnosis module: a 7-layer MLP with
// residual connections mapping the column state plus skin temperature and
// cosine of the solar zenith angle to the surface downward shortwave and
// longwave fluxes (gsw, glw).
type RadiationNet struct {
	Width  int
	NLev   int
	InDim  int
	Params *ParamSet
	wIn    [2]int
	hidden [][2]int // 5 hidden layers with residual skips
	wOut   [2]int
}

// NewRadiationNet builds the MLP. Inputs: 5·nlev column variables + tskin +
// coszr.
func NewRadiationNet(width, nlev int, rng *rand.Rand) *RadiationNet {
	n := &RadiationNet{Width: width, NLev: nlev, InDim: 5*nlev + 2, Params: NewParamSet()}
	n.wIn = [2]int{
		n.Params.Add(width*n.InDim, heScale(n.InDim), rng),
		n.Params.Add(width, 0, rng),
	}
	for i := 0; i < 5; i++ {
		n.hidden = append(n.hidden, [2]int{
			n.Params.Add(width*width, heScale(width), rng),
			n.Params.Add(width, 0, rng),
		})
	}
	n.wOut = [2]int{
		n.Params.Add(2*width, heScale(width), rng),
		n.Params.Add(2, 0, rng),
	}
	return n
}

// NumLayers returns the dense layer count (the paper's "7-layer").
func (n *RadiationNet) NumLayers() int { return 7 }

type radiationTape struct {
	x      []float32
	acts   [][]float32 // pre-skip activations per hidden layer input
	masks  [][]bool
	hidden [][]float32
}

// Forward runs the MLP; tape non-nil when training.
func (n *RadiationNet) Forward(x []float32, tape *radiationTape) []float32 {
	p := n.Params
	h := MatVec(p.Val(n.wIn[0]), p.Val(n.wIn[1]), x, n.Width)
	m := ReLU(h)
	if tape != nil {
		tape.x = x
		tape.acts = append(tape.acts, h)
		tape.masks = append(tape.masks, m)
	}
	for _, l := range n.hidden {
		in := h
		z := MatVec(p.Val(l[0]), p.Val(l[1]), in, n.Width)
		mz := ReLU(z)
		out := make([]float32, n.Width)
		for i := range out {
			out[i] = z[i] + in[i] // residual
		}
		if tape != nil {
			tape.hidden = append(tape.hidden, in)
			tape.acts = append(tape.acts, z)
			tape.masks = append(tape.masks, mz)
		}
		h = out
	}
	if tape != nil {
		tape.hidden = append(tape.hidden, h)
	}
	return MatVec(p.Val(n.wOut[0]), p.Val(n.wOut[1]), h, 2)
}

// Backward propagates dy (length 2) through the tape.
func (n *RadiationNet) Backward(tape *radiationTape, dy []float32) {
	p := n.Params
	dh := matVecBackward(p.Val(n.wOut[0]), tape.hidden[len(tape.hidden)-1], dy, p.Grad(n.wOut[0]), p.Grad(n.wOut[1]))
	for i := len(n.hidden) - 1; i >= 0; i-- {
		l := n.hidden[i]
		dz := append([]float32(nil), dh...)
		reluBackward(dz, tape.masks[i+1])
		din := matVecBackward(p.Val(l[0]), tape.hidden[i], dz, p.Grad(l[0]), p.Grad(l[1]))
		for j := range din {
			din[j] += dh[j] // skip path
		}
		dh = din
	}
	reluBackward(dh, tape.masks[0])
	matVecBackward(p.Val(n.wIn[0]), tape.x, dh, p.Grad(n.wIn[0]), p.Grad(n.wIn[1]))
}

// ParamSet owns flat parameter and gradient storage for a network.
type ParamSet struct {
	vals  [][]float32
	grads [][]float32
}

// NewParamSet returns an empty set.
func NewParamSet() *ParamSet { return &ParamSet{} }

// Add allocates a parameter tensor of n values with N(0, scale²) init
// (zero when scale is 0, for biases) and returns its handle.
func (p *ParamSet) Add(n int, scale float64, rng *rand.Rand) int {
	v := make([]float32, n)
	if scale > 0 {
		for i := range v {
			v[i] = float32(rng.NormFloat64() * scale)
		}
	}
	p.vals = append(p.vals, v)
	p.grads = append(p.grads, make([]float32, n))
	return len(p.vals) - 1
}

// Val returns the parameter values for a handle.
func (p *ParamSet) Val(h int) []float32 { return p.vals[h] }

// Grad returns the gradient accumulator for a handle.
func (p *ParamSet) Grad(h int) []float32 { return p.grads[h] }

// ZeroGrad clears all gradients.
func (p *ParamSet) ZeroGrad() {
	for _, g := range p.grads {
		for i := range g {
			g[i] = 0
		}
	}
}

// Count returns the total trainable parameter count.
func (p *ParamSet) Count() int {
	n := 0
	for _, v := range p.vals {
		n += len(v)
	}
	return n
}

// heScale returns the He-initialization standard deviation for fan-in f.
func heScale(f int) float64 { return math.Sqrt(2 / float64(f)) }

// Adam is the Adam optimizer over a ParamSet.
type Adam struct {
	LR             float64
	Beta1, Beta2   float64
	Eps            float64
	t              int
	m, v           [][]float32
	set            *ParamSet
	clippedUpdates int
}

// NewAdam returns an optimizer with the standard hyperparameters.
func NewAdam(set *ParamSet, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, set: set}
	for _, p := range set.vals {
		a.m = append(a.m, make([]float32, len(p)))
		a.v = append(a.v, make([]float32, len(p)))
	}
	return a
}

// Step applies one Adam update from the accumulated gradients.
func (a *Adam) Step() {
	a.t++
	b1c := 1 - math.Pow(a.Beta1, float64(a.t))
	b2c := 1 - math.Pow(a.Beta2, float64(a.t))
	for h, p := range a.set.vals {
		g := a.set.grads[h]
		m, v := a.m[h], a.v[h]
		for i := range p {
			gi := float64(g[i])
			m[i] = float32(a.Beta1*float64(m[i]) + (1-a.Beta1)*gi)
			v[i] = float32(a.Beta2*float64(v[i]) + (1-a.Beta2)*gi*gi)
			mHat := float64(m[i]) / b1c
			vHat := float64(v[i]) / b2c
			p[i] -= float32(a.LR * mHat / (math.Sqrt(vHat) + a.Eps))
		}
	}
}

// String implements fmt.Stringer for debugging.
func (a *Adam) String() string {
	return fmt.Sprintf("Adam(lr=%g, t=%d)", a.LR, a.t)
}
