package aiphys

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"os"
)

// Trained-suite persistence: the networks and normalization statistics are
// serialized together so a trained AI physics suite deploys into any
// compatible atmosphere configuration without retraining — the paper's
// suite is likewise trained once on high-resolution output and reused
// across resolutions.

// suiteFile is the on-disk representation.
type suiteFile struct {
	Version  int
	CNNWidth int
	MLPWidth int
	NLev     int
	CNNVals  [][]float32
	MLPVals  [][]float32
	Mean     []float64
	Std      []float64
}

const suiteFileVersion = 1

// Save writes the suite's weights and normalizer to path.
func (s *Suite) Save(path string) error {
	f := suiteFile{
		Version:  suiteFileVersion,
		CNNWidth: s.CNN.Width,
		MLPWidth: s.MLP.Width,
		NLev:     s.nlev,
		CNNVals:  s.CNN.Params.vals,
		MLPVals:  s.MLP.Params.vals,
		Mean:     s.Norm.Mean,
		Std:      s.Norm.Std,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&f); err != nil {
		return fmt.Errorf("aiphys: encoding suite: %w", err)
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// LoadWeights reconstructs the networks and normalizer from a file written
// by Save. The caller supplies the diagnostic module (it is model-bound and
// not serialized).
func LoadWeights(path string) (*TendencyNet, *RadiationNet, *Normalizer, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("aiphys: %w", err)
	}
	var f suiteFile
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&f); err != nil {
		return nil, nil, nil, fmt.Errorf("aiphys: decoding suite: %w", err)
	}
	if f.Version != suiteFileVersion {
		return nil, nil, nil, fmt.Errorf("aiphys: suite file version %d, want %d", f.Version, suiteFileVersion)
	}
	// Rebuild architectures (deterministic layout), then overwrite weights.
	rng := rand.New(rand.NewSource(0)) // weights are overwritten below
	cnn := NewTendencyNet(f.CNNWidth, f.NLev, rng)
	mlp := NewRadiationNet(f.MLPWidth, f.NLev, rng)
	if err := restoreVals(cnn.Params, f.CNNVals, "CNN"); err != nil {
		return nil, nil, nil, err
	}
	if err := restoreVals(mlp.Params, f.MLPVals, "MLP"); err != nil {
		return nil, nil, nil, err
	}
	if len(f.Mean) != nVars || len(f.Std) != nVars {
		return nil, nil, nil, fmt.Errorf("aiphys: normalizer has %d/%d slots, want %d", len(f.Mean), len(f.Std), nVars)
	}
	norm := &Normalizer{Mean: f.Mean, Std: f.Std}
	return cnn, mlp, norm, nil
}

func restoreVals(p *ParamSet, vals [][]float32, what string) error {
	if len(vals) != len(p.vals) {
		return fmt.Errorf("aiphys: %s file has %d tensors, architecture has %d", what, len(vals), len(p.vals))
	}
	for i := range vals {
		if len(vals[i]) != len(p.vals[i]) {
			return fmt.Errorf("aiphys: %s tensor %d has %d values, want %d", what, i, len(vals[i]), len(p.vals[i]))
		}
		copy(p.vals[i], vals[i])
	}
	return nil
}
