// Package aiphys implements the AI-powered physics parameterization suite
// of §5.2.1 from scratch: FP32 tensor kernels (dense matrix multiply and
// one-dimensional convolution along the vertical column), the AI tendency
// module (an 11-layer 1-D CNN with five residual units), the AI radiation
// diagnosis module (a 7-layer residual MLP estimating the surface downward
// shortwave and longwave fluxes), an Adam trainer with backpropagation, and
// the plug-compatible Suite that slots into the atmosphere's physics–
// dynamics coupling interface in place of the conventional suite.
//
// Everything is FP32: the paper notes that exploiting mixed precision for
// the ML-based parameterizations is straightforward at the operator level,
// and that the suite's computational gain comes from unifying physics into
// dense tensor kernels.
package aiphys

import "fmt"

// Seq is a channels × length sequence tensor (one atmospheric column with C
// variables over L levels), stored channel-major: Data[c*L+l].
type Seq struct {
	C, L int
	Data []float32
}

// NewSeq allocates a zeroed sequence tensor.
func NewSeq(c, l int) *Seq {
	return &Seq{C: c, L: l, Data: make([]float32, c*l)}
}

// At returns element (c, l).
func (s *Seq) At(c, l int) float32 { return s.Data[c*s.L+l] }

// Set stores v at (c, l).
func (s *Seq) Set(c, l int, v float32) { s.Data[c*s.L+l] = v }

// Conv1D computes a same-padded 1-D convolution with kernel size 3:
// y[co][l] = b[co] + Σ_ci Σ_dl w[co][ci][dl+1] · x[ci][l+dl], dl ∈ {-1,0,1}.
// w is flattened [Cout][Cin][3]; out-of-range taps read zero.
func Conv1D(x *Seq, w []float32, b []float32, cout int) *Seq {
	cin, l := x.C, x.L
	if len(w) != cout*cin*3 || len(b) != cout {
		panic(fmt.Sprintf("aiphys: conv1d weight shape %d/%d, want %d/%d", len(w), len(b), cout*cin*3, cout))
	}
	y := NewSeq(cout, l)
	for co := 0; co < cout; co++ {
		yRow := y.Data[co*l : (co+1)*l]
		for i := range yRow {
			yRow[i] = b[co]
		}
		for ci := 0; ci < cin; ci++ {
			xRow := x.Data[ci*l : (ci+1)*l]
			w0 := w[(co*cin+ci)*3+0]
			w1 := w[(co*cin+ci)*3+1]
			w2 := w[(co*cin+ci)*3+2]
			for pos := 0; pos < l; pos++ {
				var acc float32
				if pos > 0 {
					acc += w0 * xRow[pos-1]
				}
				acc += w1 * xRow[pos]
				if pos < l-1 {
					acc += w2 * xRow[pos+1]
				}
				yRow[pos] += acc
			}
		}
	}
	return y
}

// conv1DBackward computes input gradients and accumulates weight/bias
// gradients for Conv1D.
func conv1DBackward(x *Seq, w []float32, cout int, dy *Seq, dw, db []float32) *Seq {
	cin, l := x.C, x.L
	dx := NewSeq(cin, l)
	for co := 0; co < cout; co++ {
		dyRow := dy.Data[co*l : (co+1)*l]
		for pos := 0; pos < l; pos++ {
			db[co] += dyRow[pos]
		}
		for ci := 0; ci < cin; ci++ {
			xRow := x.Data[ci*l : (ci+1)*l]
			dxRow := dx.Data[ci*l : (ci+1)*l]
			base := (co*cin + ci) * 3
			w0, w1, w2 := w[base], w[base+1], w[base+2]
			var g0, g1, g2 float32
			for pos := 0; pos < l; pos++ {
				d := dyRow[pos]
				if pos > 0 {
					g0 += d * xRow[pos-1]
					dxRow[pos-1] += d * w0
				}
				g1 += d * xRow[pos]
				dxRow[pos] += d * w1
				if pos < l-1 {
					g2 += d * xRow[pos+1]
					dxRow[pos+1] += d * w2
				}
			}
			dw[base] += g0
			dw[base+1] += g1
			dw[base+2] += g2
		}
	}
	return dx
}

// MatVec computes y = W·x + b for a dense layer with W flattened row-major
// [out][in].
func MatVec(w []float32, b []float32, x []float32, out int) []float32 {
	in := len(x)
	if len(w) != out*in || len(b) != out {
		panic(fmt.Sprintf("aiphys: dense shape %d/%d, want %d/%d", len(w), len(b), out*in, out))
	}
	y := make([]float32, out)
	for o := 0; o < out; o++ {
		row := w[o*in : (o+1)*in]
		var acc float32
		for i, xi := range x {
			acc += row[i] * xi
		}
		y[o] = acc + b[o]
	}
	return y
}

// matVecBackward accumulates dense-layer gradients and returns dx.
func matVecBackward(w []float32, x []float32, dy []float32, dw, db []float32) []float32 {
	in := len(x)
	dx := make([]float32, in)
	for o, d := range dy {
		db[o] += d
		row := w[o*in : (o+1)*in]
		drow := dw[o*in : (o+1)*in]
		for i, xi := range x {
			drow[i] += d * xi
			dx[i] += d * row[i]
		}
	}
	return dx
}

// ReLU applies max(0, x) in place and returns the mask for backprop.
func ReLU(x []float32) []bool {
	mask := make([]bool, len(x))
	for i, v := range x {
		if v > 0 {
			mask[i] = true
		} else {
			x[i] = 0
		}
	}
	return mask
}

// reluBackward zeroes gradient where the activation was clipped.
func reluBackward(dy []float32, mask []bool) {
	for i := range dy {
		if !mask[i] {
			dy[i] = 0
		}
	}
}
