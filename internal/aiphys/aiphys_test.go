package aiphys

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/atmos"
	"repro/internal/pp"
)

// naiveConv1D is the reference implementation for property testing.
func naiveConv1D(x *Seq, w []float32, b []float32, cout int) *Seq {
	y := NewSeq(cout, x.L)
	for co := 0; co < cout; co++ {
		for pos := 0; pos < x.L; pos++ {
			acc := b[co]
			for ci := 0; ci < x.C; ci++ {
				for dl := -1; dl <= 1; dl++ {
					p := pos + dl
					if p < 0 || p >= x.L {
						continue
					}
					acc += w[(co*x.C+ci)*3+dl+1] * x.At(ci, p)
				}
			}
			y.Set(co, pos, acc)
		}
	}
	return y
}

func TestConv1DMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cin := 1 + rng.Intn(4)
		cout := 1 + rng.Intn(4)
		l := 2 + rng.Intn(20)
		x := NewSeq(cin, l)
		for i := range x.Data {
			x.Data[i] = float32(rng.NormFloat64())
		}
		w := make([]float32, cout*cin*3)
		for i := range w {
			w[i] = float32(rng.NormFloat64())
		}
		b := make([]float32, cout)
		for i := range b {
			b[i] = float32(rng.NormFloat64())
		}
		got := Conv1D(x, w, b, cout)
		want := naiveConv1D(x, w, b, cout)
		for i := range got.Data {
			if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestConv1DShapeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad weight shape")
		}
	}()
	Conv1D(NewSeq(2, 5), make([]float32, 3), make([]float32, 1), 1)
}

func TestMatVec(t *testing.T) {
	w := []float32{1, 2, 3, 4, 5, 6} // 2x3
	b := []float32{10, 20}
	y := MatVec(w, b, []float32{1, 1, 1}, 2)
	if y[0] != 16 || y[1] != 35 {
		t.Errorf("y = %v", y)
	}
}

func TestReLUAndBackward(t *testing.T) {
	x := []float32{-1, 0, 2}
	mask := ReLU(x)
	if x[0] != 0 || x[1] != 0 || x[2] != 2 {
		t.Errorf("relu = %v", x)
	}
	dy := []float32{5, 5, 5}
	reluBackward(dy, mask)
	if dy[0] != 0 || dy[1] != 0 || dy[2] != 5 {
		t.Errorf("relu backward = %v", dy)
	}
}

// Finite-difference gradient check for the full CNN: perturb random
// parameters, compare the backprop gradient with the central difference.
func TestCNNGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cnn := NewTendencyNet(6, 8, rng)
	x := NewSeq(5, 8)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	target := NewSeq(4, 8)
	for i := range target.Data {
		target.Data[i] = float32(rng.NormFloat64())
	}
	loss := func() float64 {
		pred := cnn.Forward(x, nil)
		var l float64
		for i := range pred.Data {
			d := float64(pred.Data[i] - target.Data[i])
			l += d * d
		}
		return l
	}
	// Backprop gradient.
	cnn.Params.ZeroGrad()
	var tape tendencyTape
	pred := cnn.Forward(x, &tape)
	dy := NewSeq(4, 8)
	for i := range pred.Data {
		dy.Data[i] = 2 * (pred.Data[i] - target.Data[i])
	}
	cnn.Backward(&tape, dy)

	// Check a handful of parameters across different tensors.
	checked := 0
	for h := 0; h < len(cnn.Params.vals); h += 3 {
		vals := cnn.Params.Val(h)
		if len(vals) == 0 {
			continue
		}
		i := rng.Intn(len(vals))
		const eps = 1e-2
		orig := vals[i]
		vals[i] = orig + eps
		lp := loss()
		vals[i] = orig - eps
		lm := loss()
		vals[i] = orig
		fd := (lp - lm) / (2 * eps)
		bp := float64(cnn.Params.Grad(h)[i])
		if math.Abs(fd-bp) > 0.05*math.Max(math.Abs(fd), math.Abs(bp))+0.02 {
			t.Errorf("param %d[%d]: finite-diff %.5f vs backprop %.5f", h, i, fd, bp)
		}
		checked++
	}
	if checked < 4 {
		t.Fatalf("only %d parameters checked", checked)
	}
}

func TestMLPGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mlp := NewRadiationNet(8, 6, rng)
	x := make([]float32, mlp.InDim)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	target := []float32{0.3, -0.7}
	loss := func() float64 {
		p := mlp.Forward(x, nil)
		var l float64
		for i := range p {
			d := float64(p[i] - target[i])
			l += d * d
		}
		return l
	}
	mlp.Params.ZeroGrad()
	var tape radiationTape
	p := mlp.Forward(x, &tape)
	dy := make([]float32, 2)
	for i := range p {
		dy[i] = 2 * (p[i] - target[i])
	}
	mlp.Backward(&tape, dy)
	for h := 0; h < len(mlp.Params.vals); h += 2 {
		vals := mlp.Params.Val(h)
		i := rng.Intn(len(vals))
		const eps = 1e-2
		orig := vals[i]
		vals[i] = orig + eps
		lp := loss()
		vals[i] = orig - eps
		lm := loss()
		vals[i] = orig
		fd := (lp - lm) / (2 * eps)
		bp := float64(mlp.Params.Grad(h)[i])
		if math.Abs(fd-bp) > 0.05*math.Max(math.Abs(fd), math.Abs(bp))+0.02 {
			t.Errorf("param %d[%d]: fd %.5f vs bp %.5f", h, i, fd, bp)
		}
	}
}

func TestResidualSkipIdentityAtZeroWeights(t *testing.T) {
	// With all residual-unit weights zeroed, the CNN is input-conv + relu
	// passed through unchanged: residual units become identity.
	rng := rand.New(rand.NewSource(3))
	cnn := NewTendencyNet(5, 6, rng)
	for u := 0; u < 5; u++ {
		for j := 0; j < 2; j++ {
			for i := range cnn.Params.Val(cnn.resW[u][j]) {
				cnn.Params.Val(cnn.resW[u][j])[i] = 0
			}
			for i := range cnn.Params.Val(cnn.resB[u][j]) {
				cnn.Params.Val(cnn.resB[u][j])[i] = 0
			}
		}
	}
	x := NewSeq(5, 6)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	h := Conv1D(x, cnn.Params.Val(cnn.inW), cnn.Params.Val(cnn.inB), cnn.Width)
	ReLU(h.Data)
	want := Conv1D(h, cnn.Params.Val(cnn.outW), cnn.Params.Val(cnn.outB), cnn.OutC)
	got := cnn.Forward(x, nil)
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("residual units not identity at zero weights")
		}
	}
}

func TestPaperScaleParameterCount(t *testing.T) {
	// The paper's tendency module has ≈ 5×10⁵ trainable parameters; the
	// architecture at width 110 lands in that range.
	rng := rand.New(rand.NewSource(4))
	cnn := NewTendencyNet(110, 30, rng)
	n := cnn.Params.Count()
	if n < 3.5e5 || n > 6.5e5 {
		t.Errorf("width-110 CNN has %d params, want ≈ 5e5", n)
	}
	if cnn.NumLayers() != 11 {
		t.Errorf("layers = %d, want 11", cnn.NumLayers())
	}
	mlp := NewRadiationNet(64, 30, rng)
	if mlp.NumLayers() != 7 {
		t.Errorf("MLP layers = %d, want 7", mlp.NumLayers())
	}
}

func TestAdamReducesQuadraticLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	set := NewParamSet()
	h := set.Add(10, 1, rng)
	opt := NewAdam(set, 0.05)
	loss := func() float64 {
		var l float64
		for _, v := range set.Val(h) {
			l += float64(v) * float64(v)
		}
		return l
	}
	l0 := loss()
	for it := 0; it < 200; it++ {
		set.ZeroGrad()
		for i, v := range set.Val(h) {
			set.Grad(h)[i] = 2 * v
		}
		opt.Step()
	}
	if l1 := loss(); l1 > l0/100 {
		t.Errorf("Adam failed to minimize: %v -> %v", l0, l1)
	}
}

func newSmallModel(t *testing.T) *atmos.Model {
	t.Helper()
	m, err := atmos.New(2, 8, atmos.DefaultConfig(), pp.Serial{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGenerateDatasetSplit(t *testing.T) {
	m := newSmallModel(t)
	ds, err := GenerateDataset(m, 80, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Test) != 10 {
		t.Errorf("test set %d, want 80/8 = 10", len(ds.Test))
	}
	if len(ds.Train)+len(ds.Test)+len(ds.Val) != 80 {
		t.Error("split loses samples")
	}
	// Normalized inputs should be O(1).
	var maxAbs float32
	for _, s := range ds.Train {
		for _, v := range s.X.Data {
			if a := absf(v); a > maxAbs {
				maxAbs = a
			}
		}
	}
	if maxAbs > 20 {
		t.Errorf("normalization failed: max |x| = %v", maxAbs)
	}
	if _, err := GenerateDataset(m, 4, 1); err == nil {
		t.Error("tiny dataset accepted")
	}
}

func absf(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

func TestTrainingReducesLoss(t *testing.T) {
	m := newSmallModel(t)
	ds, err := GenerateDataset(m, 120, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	cnn := NewTendencyNet(8, m.NLev, rng)
	mlp := NewRadiationNet(16, m.NLev, rng)
	res := Train(cnn, mlp, ds, 12, 1e-3, 13)
	if res.TestLossCNN >= res.InitialCNN {
		t.Errorf("CNN test loss did not improve: %v -> %v", res.InitialCNN, res.TestLossCNN)
	}
	if res.TestLossMLP >= res.InitialMLP {
		t.Errorf("MLP test loss did not improve: %v -> %v", res.InitialMLP, res.TestLossMLP)
	}
	// Training loss decreases over epochs (first vs last).
	if res.TrainLossCNN[len(res.TrainLossCNN)-1] >= res.TrainLossCNN[0] {
		t.Error("CNN training loss not decreasing")
	}
	if res.TrainLossMLP[len(res.TrainLossMLP)-1] >= res.TrainLossMLP[0] {
		t.Error("MLP training loss not decreasing")
	}
}

func TestAISuitePlugCompatibility(t *testing.T) {
	m := newSmallModel(t)
	suite, res, err := TrainedSuite(m, 8, 120, 8, 21)
	if err != nil {
		t.Fatal(err)
	}
	if suite.Name() != "ai-powered" {
		t.Error(suite.Name())
	}
	if res.TestLossCNN <= 0 {
		t.Error("no test loss recorded")
	}
	// Swap it in and run the model: must stay finite and produce sensible
	// radiation diagnostics.
	m.Physics = suite
	for s := 0; s < 2*m.Cfg.PhysicsEvery; s++ {
		m.Step()
	}
	if w := m.MaxWind(); math.IsNaN(w) || w > 300 {
		t.Fatalf("model unstable under AI physics: max wind %v", w)
	}
	var anyGSW bool
	for _, g := range m.GSW {
		if math.IsNaN(g) || g < 0 || g > 2000 {
			t.Fatalf("GSW out of range: %v", g)
		}
		if g > 0 {
			anyGSW = true
		}
	}
	if !anyGSW {
		t.Error("AI radiation produced zero shortwave everywhere")
	}
}

func TestSuiteValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cnn := NewTendencyNet(4, 5, rng)
	mlp := NewRadiationNet(4, 6, rng) // level mismatch
	if _, err := NewSuite(cnn, mlp, &Normalizer{}, nil); err == nil {
		t.Error("level mismatch accepted")
	}
	mlp2 := NewRadiationNet(4, 5, rng)
	if _, err := NewSuite(cnn, mlp2, nil, nil); err == nil {
		t.Error("nil normalizer accepted")
	}
}

// The AI suite must track the conventional suite on held-out columns much
// better than a zero-tendency baseline — the accuracy criterion of E1.
func TestAISuiteAccuracyAgainstConventional(t *testing.T) {
	m := newSmallModel(t)
	ds, err := GenerateDataset(m, 500, 31)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	cnn := NewTendencyNet(10, m.NLev, rng)
	mlp := NewRadiationNet(20, m.NLev, rng)
	res := Train(cnn, mlp, ds, 30, 3e-3, 33)
	// Targets are normalized to unit variance, so a zero predictor scores
	// ≈ 1.0; the trained nets must beat it clearly.
	if res.TestLossCNN > 0.7 {
		t.Errorf("CNN test loss %.3f too close to the zero-predictor baseline", res.TestLossCNN)
	}
	if res.TestLossMLP > 0.5 {
		t.Errorf("MLP test loss %.3f too close to baseline", res.TestLossMLP)
	}
}

func TestSuiteSaveLoadRoundTrip(t *testing.T) {
	m := newSmallModel(t)
	suite, _, err := TrainedSuite(m, 6, 80, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/suite.bin"
	if err := suite.Save(path); err != nil {
		t.Fatal(err)
	}
	cnn, mlp, norm, err := LoadWeights(path)
	if err != nil {
		t.Fatal(err)
	}
	diag := atmos.NewConventionalSuite(m)
	diag.DisableRadiation = true
	loaded, err := NewSuite(cnn, mlp, norm, diag)
	if err != nil {
		t.Fatal(err)
	}
	// Identical predictions on a random column.
	nlev := m.NLev
	in := atmos.ColumnIn{
		U: make([]float64, nlev), V: make([]float64, nlev),
		T: make([]float64, nlev), Q: make([]float64, nlev),
		P:   make([]float64, nlev),
		Lat: 0.5, TSkin: 295, CosZ: 0.4,
	}
	for k := 0; k < nlev; k++ {
		in.T[k] = 260 + float64(k)
		in.P[k] = m.Sig[k] * 1e5
		in.Q[k] = 0.002
	}
	mk := func() *atmos.ColumnOut {
		return &atmos.ColumnOut{
			DT: make([]float64, nlev), DQ: make([]float64, nlev),
			DU: make([]float64, nlev), DV: make([]float64, nlev),
		}
	}
	a, b := mk(), mk()
	suite.Column(in, 480, a)
	loaded.Column(in, 480, b)
	for k := 0; k < nlev; k++ {
		if a.DT[k] != b.DT[k] || a.DQ[k] != b.DQ[k] {
			t.Fatalf("loaded suite diverges at level %d", k)
		}
	}
	if a.GSW != b.GSW || a.GLW != b.GLW {
		t.Fatal("loaded radiation diverges")
	}
	// Corrupt/missing files rejected.
	if _, _, _, err := LoadWeights(path + ".nope"); err == nil {
		t.Error("missing file accepted")
	}
}
