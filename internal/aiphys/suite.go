package aiphys

import (
	"fmt"
	"math/rand"

	"repro/internal/atmos"
)

// Suite is the AI-powered resolution-adaptive physics suite (§5.2.1,
// Fig 4): the AI tendency module and the AI radiation diagnosis module
// replace the conventional parameterizations, while the conventional
// diagnostic module (surface stress, fluxes, condensation/precipitation
// bookkeeping) is retained. It implements atmos.Suite, so the atmosphere's
// physics–dynamics coupling interface is untouched — the property that
// makes the suite portable across architectures.
type Suite struct {
	CNN  *TendencyNet
	MLP  *RadiationNet
	Norm *Normalizer
	// Diagnostic is the conventional diagnostic module retained by the AI
	// suite for surface exchange and precipitation bookkeeping.
	Diagnostic atmos.Suite
	nlev       int
}

// NewSuite assembles the AI suite from trained networks.
func NewSuite(cnn *TendencyNet, mlp *RadiationNet, norm *Normalizer, diagnostic atmos.Suite) (*Suite, error) {
	if cnn.NLev != mlp.NLev {
		return nil, fmt.Errorf("aiphys: CNN has %d levels, MLP %d", cnn.NLev, mlp.NLev)
	}
	if norm == nil || diagnostic == nil {
		return nil, fmt.Errorf("aiphys: nil normalizer or diagnostic module")
	}
	return &Suite{CNN: cnn, MLP: mlp, Norm: norm, Diagnostic: diagnostic, nlev: cnn.NLev}, nil
}

// TrainedSuite generates a dataset from the model's conventional suite,
// trains paper-architecture networks at the given width, and returns the
// assembled AI suite along with the training summary.
func TrainedSuite(m *atmos.Model, width, nSamples, epochs int, seed int64) (*Suite, *TrainResult, error) {
	ds, err := GenerateDataset(m, nSamples, seed)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	cnn := NewTendencyNet(width, m.NLev, rng)
	mlp := NewRadiationNet(width*2, m.NLev, rng)
	res := Train(cnn, mlp, ds, epochs, 1e-3, seed+2)
	diag := atmos.NewConventionalSuite(m)
	diag.DisableRadiation = true // the AI radiation module replaces it
	suite, err := NewSuite(cnn, mlp, ds.Norm, diag)
	if err != nil {
		return nil, nil, err
	}
	return suite, res, nil
}

// Name implements atmos.Suite.
func (s *Suite) Name() string { return "ai-powered" }

// Column implements atmos.Suite: tendencies from the CNN, surface radiation
// from the MLP, surface exchange and precipitation from the conventional
// diagnostic module.
func (s *Suite) Column(in atmos.ColumnIn, dt float64, out *atmos.ColumnOut) {
	nlev := s.nlev
	// Run the conventional diagnostic module first; the AI modules then
	// overwrite the tendency and radiation fields.
	s.Diagnostic.Column(in, dt, out)

	x := NewSeq(5, nlev)
	for k := 0; k < nlev; k++ {
		x.Set(0, k, s.Norm.norm(nvU, in.U[k]))
		x.Set(1, k, s.Norm.norm(nvV, in.V[k]))
		x.Set(2, k, s.Norm.norm(nvT, in.T[k]))
		x.Set(3, k, s.Norm.norm(nvQ, in.Q[k]))
		x.Set(4, k, s.Norm.norm(nvP, in.P[k]))
	}
	pred := s.CNN.Forward(x, nil)
	for k := 0; k < nlev; k++ {
		out.DU[k] = s.Norm.denorm(nvDU, pred.At(0, k))
		out.DV[k] = s.Norm.denorm(nvDV, pred.At(1, k))
		out.DT[k] = s.Norm.denorm(nvDT, pred.At(2, k))
		out.DQ[k] = s.Norm.denorm(nvDQ, pred.At(3, k))
	}

	radIn := make([]float32, 5*nlev+2)
	copy(radIn, x.Data)
	radIn[5*nlev] = s.Norm.norm(nvTSkin, in.TSkin)
	radIn[5*nlev+1] = s.Norm.norm(nvCosZ, in.CosZ)
	rad := s.MLP.Forward(radIn, nil)
	gsw := s.Norm.denorm(nvGSW, rad[0])
	glw := s.Norm.denorm(nvGLW, rad[1])
	if gsw < 0 {
		gsw = 0
	}
	if glw < 0 {
		glw = 0
	}
	out.GSW = gsw
	out.GLW = glw
}
