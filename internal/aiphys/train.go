package aiphys

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/atmos"
)

// Sample is one training column: normalized inputs and targets.
type Sample struct {
	X      *Seq      // 5 × nlev: U, V, T, Q, P (normalized)
	Y      *Seq      // 4 × nlev: dU, dV, dT, dQ (normalized)
	RadIn  []float32 // 5·nlev + tskin + coszr (normalized)
	RadOut []float32 // gsw, glw (normalized)
}

// Normalizer holds per-variable affine normalization statistics.
type Normalizer struct {
	Mean, Std []float64 // indexed by variable slot
}

// variable slots for normalization
const (
	nvU = iota
	nvV
	nvT
	nvQ
	nvP
	nvDU
	nvDV
	nvDT
	nvDQ
	nvTSkin
	nvCosZ
	nvGSW
	nvGLW
	nVars
)

// Dataset is a normalized training corpus following the paper's protocol:
// columns sampled from the high-resolution conventional-physics model,
// split 7:1 into training and test sets, with a small validation subset.
type Dataset struct {
	Train, Test, Val []Sample
	Norm             *Normalizer
	NLev             int
}

// GenerateDataset produces nSamples columns by running the conventional
// suite of the supplied ("high-resolution") model on perturbed model
// states, recording (inputs → tendencies, radiation). This substitutes for
// the paper's 80 days of 5 km GRIST output (20 per season — here, sampling
// spans the full parameter range directly). Using supervision from the
// high-resolution configuration is what makes the trained suite
// resolution-adaptive.
func GenerateDataset(m *atmos.Model, nSamples int, seed int64) (*Dataset, error) {
	if nSamples < 16 {
		return nil, fmt.Errorf("aiphys: need at least 16 samples, got %d", nSamples)
	}
	rng := rand.New(rand.NewSource(seed))
	nlev := m.NLev
	suite := atmos.NewConventionalSuite(m)

	raw := make([]rawSample, nSamples)
	for s := range raw {
		in := atmos.ColumnIn{
			U: make([]float64, nlev), V: make([]float64, nlev),
			T: make([]float64, nlev), Q: make([]float64, nlev),
			P: make([]float64, nlev),
		}
		lat := (rng.Float64() - 0.5) * math.Pi
		in.Lat = lat
		in.TSkin = 273.15 + 28*math.Cos(lat)*math.Cos(lat) + rng.NormFloat64()*3
		in.CosZ = rng.Float64()
		in.Land = rng.Float64() < 0.29
		ps := 1e5 + rng.NormFloat64()*1500
		for k := 0; k < nlev; k++ {
			sig := m.Sig[k]
			in.P[k] = sig * ps
			in.T[k] = atmosEqT(lat, sig) + rng.NormFloat64()*6
			in.Q[k] = math.Max(0, (0.7+0.4*rng.Float64())*qsatApprox(in.T[k], in.P[k])*math.Pow(sig, 3))
			in.U[k] = rng.NormFloat64() * 15
			in.V[k] = rng.NormFloat64() * 8
		}
		out := atmos.ColumnOut{
			DT: make([]float64, nlev), DQ: make([]float64, nlev),
			DU: make([]float64, nlev), DV: make([]float64, nlev),
		}
		suite.Column(in, m.DtModel(), &out)
		raw[s] = rawSample{in: in, out: out}
	}

	norm := fitNormalizer(raw, nlev)
	samples := make([]Sample, nSamples)
	for i, r := range raw {
		samples[i] = norm.encode(r, nlev)
	}

	// 7:1 train:test split, plus a validation subset drawn from training
	// (the paper extracts random timesteps for hyperparameter tuning).
	rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
	nTest := nSamples / 8
	nVal := nTest / 2
	if nVal < 1 {
		nVal = 1
	}
	ds := &Dataset{Norm: norm, NLev: nlev}
	ds.Test = samples[:nTest]
	ds.Val = samples[nTest : nTest+nVal]
	ds.Train = samples[nTest+nVal:]
	return ds, nil
}

type rawSample struct {
	in  atmos.ColumnIn
	out atmos.ColumnOut
}

// fitNormalizer computes per-variable means and standard deviations.
func fitNormalizer(raw []rawSample, nlev int) *Normalizer {
	n := &Normalizer{Mean: make([]float64, nVars), Std: make([]float64, nVars)}
	var cnt float64
	acc := func(slot int, v float64) {
		n.Mean[slot] += v
		n.Std[slot] += v * v
	}
	for _, r := range raw {
		for k := 0; k < nlev; k++ {
			acc(nvU, r.in.U[k])
			acc(nvV, r.in.V[k])
			acc(nvT, r.in.T[k])
			acc(nvQ, r.in.Q[k])
			acc(nvP, r.in.P[k])
			acc(nvDU, r.out.DU[k])
			acc(nvDV, r.out.DV[k])
			acc(nvDT, r.out.DT[k])
			acc(nvDQ, r.out.DQ[k])
		}
		acc(nvTSkin, r.in.TSkin)
		acc(nvCosZ, r.in.CosZ)
		acc(nvGSW, r.out.GSW)
		acc(nvGLW, r.out.GLW)
	}
	cnt = float64(len(raw) * nlev)
	cntS := float64(len(raw))
	for slot := 0; slot < nVars; slot++ {
		c := cnt
		if slot >= nvTSkin {
			c = cntS
		}
		n.Mean[slot] /= c
		v := n.Std[slot]/c - n.Mean[slot]*n.Mean[slot]
		if v < 1e-30 {
			v = 1e-30
		}
		n.Std[slot] = math.Sqrt(v)
	}
	return n
}

// encode normalizes one raw sample.
func (n *Normalizer) encode(r rawSample, nlev int) Sample {
	x := NewSeq(5, nlev)
	y := NewSeq(4, nlev)
	for k := 0; k < nlev; k++ {
		x.Set(0, k, n.norm(nvU, r.in.U[k]))
		x.Set(1, k, n.norm(nvV, r.in.V[k]))
		x.Set(2, k, n.norm(nvT, r.in.T[k]))
		x.Set(3, k, n.norm(nvQ, r.in.Q[k]))
		x.Set(4, k, n.norm(nvP, r.in.P[k]))
		y.Set(0, k, n.norm(nvDU, r.out.DU[k]))
		y.Set(1, k, n.norm(nvDV, r.out.DV[k]))
		y.Set(2, k, n.norm(nvDT, r.out.DT[k]))
		y.Set(3, k, n.norm(nvDQ, r.out.DQ[k]))
	}
	radIn := make([]float32, 5*nlev+2)
	copy(radIn, x.Data)
	radIn[5*nlev] = n.norm(nvTSkin, r.in.TSkin)
	radIn[5*nlev+1] = n.norm(nvCosZ, r.in.CosZ)
	radOut := []float32{n.norm(nvGSW, r.out.GSW), n.norm(nvGLW, r.out.GLW)}
	return Sample{X: x, Y: y, RadIn: radIn, RadOut: radOut}
}

func (n *Normalizer) norm(slot int, v float64) float32 {
	z := (v - n.Mean[slot]) / n.Std[slot]
	// Winsorize: condensation makes the tendency distributions heavy-tailed
	// (rare ±30σ spikes); clipping at ±5σ keeps the MSE objective focused on
	// the bulk of the physics, standard practice for ML parameterizations.
	if z > 5 {
		z = 5
	} else if z < -5 {
		z = -5
	}
	return float32(z)
}

func (n *Normalizer) denorm(slot int, v float32) float64 {
	return float64(v)*n.Std[slot] + n.Mean[slot]
}

// TrainResult summarizes a training run.
type TrainResult struct {
	Epochs       int
	TrainLossCNN []float64
	TrainLossMLP []float64
	TestLossCNN  float64
	TestLossMLP  float64
	InitialCNN   float64
	InitialMLP   float64
}

// Train fits both networks on the dataset with Adam and mean-squared error.
func Train(cnn *TendencyNet, mlp *RadiationNet, ds *Dataset, epochs int, lr float64, seed int64) *TrainResult {
	rng := rand.New(rand.NewSource(seed))
	optC := NewAdam(cnn.Params, lr)
	optM := NewAdam(mlp.Params, lr)
	res := &TrainResult{Epochs: epochs}
	res.InitialCNN = evalCNN(cnn, ds.Test)
	res.InitialMLP = evalMLP(mlp, ds.Test)

	idx := make([]int, len(ds.Train))
	for i := range idx {
		idx[i] = i
	}
	const batch = 8
	for ep := 0; ep < epochs; ep++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var lossC, lossM float64
		for b := 0; b < len(idx); b += batch {
			end := b + batch
			if end > len(idx) {
				end = len(idx)
			}
			cnn.Params.ZeroGrad()
			mlp.Params.ZeroGrad()
			for _, i := range idx[b:end] {
				s := ds.Train[i]
				var tc tendencyTape
				pred := cnn.Forward(s.X, &tc)
				dy := NewSeq(pred.C, pred.L)
				var l float64
				for j := range pred.Data {
					d := pred.Data[j] - s.Y.Data[j]
					l += float64(d) * float64(d)
					dy.Data[j] = 2 * d / float32(len(pred.Data)*(end-b))
				}
				lossC += l / float64(len(pred.Data))
				cnn.Backward(&tc, dy)

				var tm radiationTape
				rp := mlp.Forward(s.RadIn, &tm)
				dr := make([]float32, 2)
				var lm float64
				for j := range rp {
					d := rp[j] - s.RadOut[j]
					lm += float64(d) * float64(d)
					dr[j] = 2 * d / float32(2*(end-b))
				}
				lossM += lm / 2
				mlp.Backward(&tm, dr)
			}
			optC.Step()
			optM.Step()
		}
		res.TrainLossCNN = append(res.TrainLossCNN, lossC/float64(len(idx)))
		res.TrainLossMLP = append(res.TrainLossMLP, lossM/float64(len(idx)))
	}
	res.TestLossCNN = evalCNN(cnn, ds.Test)
	res.TestLossMLP = evalMLP(mlp, ds.Test)
	return res
}

func evalCNN(cnn *TendencyNet, set []Sample) float64 {
	var loss float64
	for _, s := range set {
		pred := cnn.Forward(s.X, nil)
		var l float64
		for j := range pred.Data {
			d := float64(pred.Data[j] - s.Y.Data[j])
			l += d * d
		}
		loss += l / float64(len(pred.Data))
	}
	return loss / float64(len(set))
}

func evalMLP(mlp *RadiationNet, set []Sample) float64 {
	var loss float64
	for _, s := range set {
		pred := mlp.Forward(s.RadIn, nil)
		var l float64
		for j := range pred {
			d := float64(pred[j] - s.RadOut[j])
			l += d * d
		}
		loss += l / 2
	}
	return loss / float64(len(set))
}

// helpers mirroring the atmosphere's analytic functions without exporting
// them from atmos.

func atmosEqT(lat, sig float64) float64 {
	p := sig * 1e5
	t := (315 - 60*sinSq(lat) - 10*math.Log(p/1e5)*cosSq(lat)) * math.Pow(p/1e5, 0.2859)
	if t < 200 {
		t = 200
	}
	return t
}

func qsatApprox(t, p float64) float64 {
	es := 610.78 * math.Exp(17.27*(t-273.15)/(t-35.85))
	q := 0.622 * es / math.Max(p-0.378*es, 1)
	return math.Min(q, 0.08)
}

func sinSq(x float64) float64 { s := math.Sin(x); return s * s }
func cosSq(x float64) float64 { c := math.Cos(x); return c * c }
