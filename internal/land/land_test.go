package land

import (
	"math"
	"testing"

	"repro/internal/grid"
)

func newLand(t *testing.T) (*Model, *grid.IcosMesh) {
	t.Helper()
	mesh, err := grid.NewIcosMesh(3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(mesh, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m, mesh
}

func TestLandCellsMatchMask(t *testing.T) {
	m, mesh := newLand(t)
	if m.NLand() == 0 {
		t.Fatal("no land cells")
	}
	frac := float64(m.NLand()) / float64(mesh.NCells())
	if frac < 0.15 || frac > 0.45 {
		t.Errorf("land fraction %.2f, want ~0.29", frac)
	}
	for _, c := range m.Cells {
		if !grid.IsLand(mesh.LonCell[c], mesh.LatCell[c]) {
			t.Fatalf("cell %d not land", c)
		}
	}
}

func TestValidation(t *testing.T) {
	mesh, _ := grid.NewIcosMesh(1)
	if _, err := New(mesh, Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestStepNonLandCellRejected(t *testing.T) {
	m, mesh := newLand(t)
	// Find an ocean cell.
	for c := 0; c < mesh.NCells(); c++ {
		if !grid.IsLand(mesh.LonCell[c], mesh.LatCell[c]) {
			if _, err := m.StepCell(c, Forcing{}, 600); err == nil {
				t.Error("ocean cell accepted")
			}
			return
		}
	}
}

func sunnyForcing() Forcing {
	return Forcing{
		GSW: 600, GLW: 350, TAir: 290, QAir: 0.008,
		Wind: 5, Precip: 0, PSfc: 1e5,
	}
}

func TestStrongSunWarmsSoil(t *testing.T) {
	m, _ := newLand(t)
	c := m.Cells[0]
	t0 := m.TSoil[0]
	for i := 0; i < 48; i++ {
		if _, err := m.StepCell(c, sunnyForcing(), 1800); err != nil {
			t.Fatal(err)
		}
	}
	if m.TSoil[0] <= t0 {
		t.Errorf("soil did not warm under 600 W/m²: %v -> %v", t0, m.TSoil[0])
	}
	if m.TSoil[0] > 340 {
		t.Errorf("soil runaway: %v", m.TSoil[0])
	}
}

func TestNoSunCoolsSoil(t *testing.T) {
	m, _ := newLand(t)
	c := m.Cells[0]
	f := sunnyForcing()
	f.GSW = 0
	f.GLW = 200
	t0 := m.TSoil[0]
	for i := 0; i < 48; i++ {
		m.StepCell(c, f, 1800)
	}
	if m.TSoil[0] >= t0 {
		t.Errorf("soil did not cool at night: %v -> %v", t0, m.TSoil[0])
	}
}

func TestEnergyBalanceEquilibrium(t *testing.T) {
	// Under fixed forcing the slab must approach a steady state where
	// absorbed ≈ emitted + turbulent fluxes.
	m, _ := newLand(t)
	c := m.Cells[0]
	f := sunnyForcing()
	for i := 0; i < 5000; i++ {
		m.StepCell(c, f, 3600)
	}
	r, err := m.StepCell(c, f, 3600)
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Cfg
	absorbed := (1-cfg.Albedo)*f.GSW + cfg.Emissivity*f.GLW
	emitted := cfg.Emissivity * 5.670e-8 * math.Pow(r.TSkin, 4)
	residual := absorbed - emitted - r.SHF - r.LHF
	if math.Abs(residual) > 5 {
		t.Errorf("equilibrium residual %v W/m²", residual)
	}
}

func TestBucketHydrology(t *testing.T) {
	m, _ := newLand(t)
	c := m.Cells[0]
	slot := 0
	// Heavy rain fills the bucket and eventually produces runoff.
	f := sunnyForcing()
	f.GSW = 0
	f.Precip = 1e-3 // kg/m²/s = 3.6 mm/h
	var sawRunoff bool
	for i := 0; i < 200; i++ {
		m.StepCell(c, f, 3600)
		if m.Runoff[slot] > 0 {
			sawRunoff = true
		}
		if m.Bucket[slot] > bucketCap+1e-12 {
			t.Fatal("bucket exceeded capacity")
		}
	}
	if !sawRunoff {
		t.Error("no runoff under sustained heavy rain")
	}
	// Drought: bucket drains, beta limits evaporation.
	f.Precip = 0
	f.GSW = 700
	for i := 0; i < 3000; i++ {
		m.StepCell(c, f, 3600)
	}
	if m.Bucket[slot] > bucketCap/4 {
		t.Errorf("bucket did not dry: %v", m.Bucket[slot])
	}
	if m.Bucket[slot] < 0 {
		t.Error("negative bucket")
	}
}

func TestEvaporationRequiresWaterAndWind(t *testing.T) {
	m, _ := newLand(t)
	c := m.Cells[0]
	slot := 0
	m.Bucket[slot] = 0
	r, _ := m.StepCell(c, sunnyForcing(), 600)
	if r.Evap != 0 {
		t.Errorf("evaporation %v from empty bucket", r.Evap)
	}
	m.Bucket[slot] = bucketCap
	f := sunnyForcing()
	f.Wind = 0
	r, _ = m.StepCell(c, f, 600)
	if r.Evap != 0 {
		t.Errorf("evaporation %v with no wind", r.Evap)
	}
}

func TestDiagnostics(t *testing.T) {
	m, _ := newLand(t)
	if m.MeanSoilTemp() < 230 || m.MeanSoilTemp() > 310 {
		t.Errorf("mean soil T %v", m.MeanSoilTemp())
	}
	if m.TotalWater() <= 0 {
		t.Error("no initial soil water")
	}
}

// Slots partitions the land columns under any cell-ownership predicate: the
// per-owner slot lists are disjoint, ascending, and together cover every
// slot exactly once — including cells adopted after construction, whose
// slots are appended out of cell order.
func TestSlotsPartition(t *testing.T) {
	m, mesh := newLand(t)
	// Adopt a few non-land cells so the slot list is not cell-sorted.
	var extra []int
	for c := 0; c < mesh.NCells() && len(extra) < 5; c++ {
		if !grid.IsLand(mesh.LonCell[c], mesh.LatCell[c]) {
			extra = append(extra, c)
		}
	}
	m.Adopt(mesh, extra)

	const owners = 3
	owner := func(cell int) int { return cell % owners }
	seen := make([]int, m.NLand())
	for o := 0; o < owners; o++ {
		slots := m.Slots(func(cell int) bool { return owner(cell) == o })
		prev := -1
		for _, s := range slots {
			if s <= prev {
				t.Fatalf("owner %d: slots not strictly ascending at %d", o, s)
			}
			prev = s
			if got := owner(m.Cells[s]); got != o {
				t.Fatalf("slot %d owned by %d, listed under %d", s, got, o)
			}
			seen[s]++
		}
	}
	for s, n := range seen {
		if n != 1 {
			t.Fatalf("slot %d covered %d times, want exactly once", s, n)
		}
	}
}

// TotalWaterAt over an ownership partition recovers TotalWater: exactly for
// the trivial partition, and to summation-order round-off when the partials
// are reduced across owners — the decomposed budget audit's contract.
func TestTotalWaterAtPartition(t *testing.T) {
	m, _ := newLand(t)
	// Perturb the buckets so the test is not summing identical values.
	for s := range m.Bucket {
		m.Bucket[s] = 0.01 + 0.001*float64(s%17)
	}
	all := m.Slots(func(int) bool { return true })
	if got, want := m.TotalWaterAt(all), m.TotalWater(); got != want {
		t.Fatalf("TotalWaterAt(all) = %v, TotalWater = %v", got, want)
	}
	var sum float64
	for o := 0; o < 4; o++ {
		sum += m.TotalWaterAt(m.Slots(func(cell int) bool { return cell%4 == o }))
	}
	if want := m.TotalWater(); math.Abs(sum-want) > 1e-12*math.Abs(want) {
		t.Fatalf("partitioned sum %v, total %v", sum, want)
	}
}
