// Package land is the land-surface component of the reproduction: a
// bucket-hydrology, force-restore surface-energy-balance model on the
// atmosphere's icosahedral mesh. As in the paper (§5.1.1), the land model
// exchanges data directly with the atmosphere, bypassing the coupler: the
// atmosphere hands it the downward radiation (gsw, glw — the outputs of the
// AI radiation diagnosis module), precipitation, and lowest-level state;
// the land model returns the skin temperature and surface fluxes.
package land

import (
	"fmt"
	"math"

	"repro/internal/grid"
)

// Physical constants.
const (
	sigmaSB     = 5.670e-8 // Stefan–Boltzmann
	soilHeatCap = 2.0e6    // volumetric heat capacity, J/(m³ K)
	soilDepth   = 0.5      // thermally active layer, m
	bucketCap   = 0.15     // bucket capacity, m of water
	rhoAir      = 1.2
	cpAir       = 1004.64
	latVap      = 2.5e6
)

// Config sets the land model parameters.
type Config struct {
	Albedo     float64 // snow-free albedo
	Emissivity float64
	DrainTime  float64 // bucket drainage timescale, s
	ExchCoeff  float64 // bulk transfer coefficient Ch = Ce
}

// DefaultConfig returns standard parameters.
func DefaultConfig() Config {
	return Config{
		Albedo:     0.25,
		Emissivity: 0.95,
		DrainTime:  20 * 86400,
		ExchCoeff:  2.0e-3,
	}
}

// Model is the land state over the atmosphere's land cells.
type Model struct {
	Cfg   Config
	Cells []int // atmosphere cell indices that are land

	TSoil  []float64 // soil temperature per land cell, K
	Bucket []float64 // soil water per land cell, m

	// Diagnostics of the last step.
	Runoff []float64 // m/s
	Evap   []float64 // kg/m²/s

	index map[int]int // atmosphere cell -> local slot
}

// New builds the land model for the land cells of an icosahedral mesh.
func New(mesh *grid.IcosMesh, cfg Config) (*Model, error) {
	if cfg.ExchCoeff <= 0 || cfg.DrainTime <= 0 {
		return nil, fmt.Errorf("land: non-positive parameters")
	}
	m := &Model{Cfg: cfg, index: make(map[int]int)}
	for c := 0; c < mesh.NCells(); c++ {
		if grid.IsLand(mesh.LonCell[c], mesh.LatCell[c]) {
			m.index[c] = len(m.Cells)
			m.Cells = append(m.Cells, c)
			lat := mesh.LatCell[c]
			m.TSoil = append(m.TSoil, 273.15+25*math.Cos(lat)*math.Cos(lat))
			m.Bucket = append(m.Bucket, bucketCap/2)
		}
	}
	m.Runoff = make([]float64, len(m.Cells))
	m.Evap = make([]float64, len(m.Cells))
	return m, nil
}

// NLand returns the number of land cells.
func (m *Model) NLand() int { return len(m.Cells) }

// Adopt takes ownership of additional atmosphere cells — the coupler's
// unmapped cells, whose spiral search found no wet ocean column — so their
// surface exchange runs through the land model instead of being dropped.
// Already-owned cells are skipped; adopted cells get the same analytic
// initial state as native land cells.
func (m *Model) Adopt(mesh *grid.IcosMesh, cells []int) {
	for _, c := range cells {
		if _, ok := m.index[c]; ok {
			continue
		}
		m.index[c] = len(m.Cells)
		m.Cells = append(m.Cells, c)
		lat := mesh.LatCell[c]
		m.TSoil = append(m.TSoil, 273.15+25*math.Cos(lat)*math.Cos(lat))
		m.Bucket = append(m.Bucket, bucketCap/2)
		m.Runoff = append(m.Runoff, 0)
		m.Evap = append(m.Evap, 0)
	}
}

// Slots returns the local slot indices (ascending) of the cells satisfying
// pred — how a decomposed driver partitions the land columns with the
// atmosphere's ownership map: it steps the slots of its extended patch and
// audits the slots of its owned range.
func (m *Model) Slots(pred func(cell int) bool) []int {
	var out []int
	for slot, c := range m.Cells {
		if pred(c) {
			out = append(out, slot)
		}
	}
	return out
}

// TotalWaterAt returns the bucket water summed over the given slots, the
// partial sum a decomposed budget audit contributes before its allreduce.
func (m *Model) TotalWaterAt(slots []int) float64 {
	var s float64
	for _, slot := range slots {
		s += m.Bucket[slot]
	}
	return s
}

// Forcing is the per-cell atmospheric input for one land step.
type Forcing struct {
	GSW    float64 // downward shortwave, W/m²
	GLW    float64 // downward longwave, W/m²
	TAir   float64 // lowest-level air temperature, K
	QAir   float64 // lowest-level specific humidity
	Wind   float64 // lowest-level wind speed, m/s
	Precip float64 // kg/m²/s
	PSfc   float64 // surface pressure, Pa
}

// Response is what the land returns to the atmosphere.
type Response struct {
	TSkin float64 // skin temperature, K
	SHF   float64 // sensible heat flux, W/m² (positive up, into atmosphere)
	LHF   float64 // latent heat flux, W/m²
	Evap  float64 // kg/m²/s
}

// StepCell advances one land cell by dt under the given forcing and returns
// its response. Surface energy balance: absorbed SW + incoming LW − emitted
// LW − sensible − latent heats the soil slab; the bucket gains rain and
// loses evaporation and slow drainage.
func (m *Model) StepCell(atmCell int, f Forcing, dt float64) (Response, error) {
	slot, ok := m.index[atmCell]
	if !ok {
		return Response{}, fmt.Errorf("land: cell %d is not a land cell", atmCell)
	}
	ts := m.TSoil[slot]

	// Turbulent fluxes with the current skin temperature.
	shf := rhoAir * cpAir * m.Cfg.ExchCoeff * f.Wind * (ts - f.TAir)
	// Evaporation limited by bucket fullness (beta factor).
	beta := m.Bucket[slot] / bucketCap
	if beta > 1 {
		beta = 1
	}
	qs := qsatLand(ts, f.PSfc)
	evap := rhoAir * m.Cfg.ExchCoeff * f.Wind * (qs - f.QAir) * beta
	if evap < 0 {
		evap = 0 // no dew in the reproduction
	}
	lhf := latVap * evap

	// Energy balance on the soil slab.
	absorbed := (1-m.Cfg.Albedo)*f.GSW + m.Cfg.Emissivity*f.GLW
	emitted := m.Cfg.Emissivity * sigmaSB * ts * ts * ts * ts
	net := absorbed - emitted - shf - lhf
	m.TSoil[slot] = ts + dt*net/(soilHeatCap*soilDepth)

	// Bucket hydrology: rain in, evaporation and drainage out, spill to
	// runoff at capacity.
	w := m.Bucket[slot]
	w += dt * (f.Precip/1000 - evap/1000) // kg/m²/s → m/s of water
	drain := w / m.Cfg.DrainTime * dt
	w -= drain
	runoff := drain / dt
	if w > bucketCap {
		runoff += (w - bucketCap) / dt
		w = bucketCap
	}
	if w < 0 {
		w = 0
	}
	m.Bucket[slot] = w
	m.Runoff[slot] = runoff
	m.Evap[slot] = evap

	return Response{TSkin: m.TSoil[slot], SHF: shf, LHF: lhf, Evap: evap}, nil
}

// MeanSoilTemp returns the mean soil temperature (K).
func (m *Model) MeanSoilTemp() float64 {
	if len(m.TSoil) == 0 {
		return 0
	}
	var s float64
	for _, t := range m.TSoil {
		s += t
	}
	return s / float64(len(m.TSoil))
}

// TotalWater returns the total bucket water (m, summed over cells).
func (m *Model) TotalWater() float64 {
	var s float64
	for _, w := range m.Bucket {
		s += w
	}
	return s
}

func qsatLand(t, p float64) float64 {
	es := 610.78 * math.Exp(17.27*(t-273.15)/(t-35.85))
	q := 0.622 * es / math.Max(p-0.378*es, 1)
	return math.Min(q, 0.08)
}
