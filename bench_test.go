// Package repro's top-level benchmark harness regenerates every table and
// figure of the paper's evaluation (see DESIGN.md §4 for the experiment
// index and EXPERIMENTS.md for recorded results):
//
//	BenchmarkTable1Configurations  — Table 1   (grid counts)
//	BenchmarkTable2StrongScaling   — Table 2   (SYPD on both machines)
//	BenchmarkFigure2SOTA           — Figure 2  (state-of-the-art scatter + line)
//	BenchmarkFigure8aStrongScaling — Figure 8a (strong-scaling curves)
//	BenchmarkFigure8bWeakScaling   — Figure 8b (weak-scaling ladders)
//	BenchmarkFigure6TyphoonStructure / BenchmarkFigure7Track — Figs 1/6/7
//	BenchmarkAIPhysicsSuite        — §5.2.1    (AI vs conventional physics)
//	BenchmarkOceanCompaction       — §5.2.2    (non-ocean-point exclusion)
//	BenchmarkMixedPrecision        — §5.2.3    (FP64 vs group-scaled FP32)
//	BenchmarkCouplerRearranger / BenchmarkRouterOffline — §5.2.4
//	BenchmarkParallelIO            — §5.2.5    (single file vs subfiles)
//	BenchmarkPortabilityBackends   — §5.3      (Serial / Host / CPE spaces)
//	BenchmarkTaskLayouts           — §5.1.2/§7.2 (sequential vs concurrent)
//	BenchmarkCoupledESM            — measured SYPD of the miniature coupled model
package repro

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/aiphys"
	"repro/internal/atmos"
	"repro/internal/core"
	"repro/internal/coupler"
	"repro/internal/grid"
	"repro/internal/ocean"
	"repro/internal/par"
	"repro/internal/pario"
	"repro/internal/perfmodel"
	"repro/internal/pp"
	"repro/internal/precision"
	"repro/internal/typhoon"
)

// BenchmarkTable1Configurations regenerates Table 1 from the closed-form
// mesh counts and the LICOM grid catalog.
func BenchmarkTable1Configurations(b *testing.B) {
	var rows []perfmodel.Table1Row
	for i := 0; i < b.N; i++ {
		rows = perfmodel.Table1()
	}
	b.ReportMetric(float64(len(rows)), "rows")
	if b.N > 0 {
		b.Logf("\n%s", perfmodel.FormatTable1(rows))
	}
}

func newModel(b *testing.B) *perfmodel.Model {
	b.Helper()
	m, err := perfmodel.NewModel()
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkTable2StrongScaling regenerates every row of Table 2 (both the
// ORISE and Sunway OceanLight sections) from the calibrated machine model
// and reports the worst deviation from the paper's values.
func BenchmarkTable2StrongScaling(b *testing.B) {
	m := newModel(b)
	var rows []perfmodel.Table2Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = m.Table2()
	}
	b.StopTimer()
	worst := 0.0
	for _, r := range rows {
		if rel := math.Abs(r.ModelSYPD-r.PaperSYPD) / r.PaperSYPD; rel > worst {
			worst = rel
		}
	}
	b.ReportMetric(float64(len(rows)), "rows")
	b.ReportMetric(100*worst, "worst-dev-%")
	b.Logf("\n%s", perfmodel.FormatTable2(rows))
}

// BenchmarkFigure2SOTA regenerates the state-of-the-art comparison: the
// published-model scatter, the log-linear SOTA line through CNRM(2019) and
// CESM(2024), and the AP3ESM points above it.
func BenchmarkFigure2SOTA(b *testing.B) {
	var line perfmodel.SOTALine
	entries := perfmodel.Figure2Entries()
	for i := 0; i < b.N; i++ {
		line = perfmodel.FitSOTALine(entries)
	}
	b.StopTimer()
	for _, e := range entries {
		above, factor := line.Above(e)
		b.Logf("%-18s (%d): %8.3g grid points, %5.2f SYPD  line=%5.2f  above=%-5v (%.2fx)  [%s]",
			e.Name, e.Year, e.GridPoints, e.SYPD, line.At(e.GridPoints), above, factor, e.Source)
	}
	b.ReportMetric(line.Slope, "line-slope")
}

// BenchmarkFigure8aStrongScaling samples every strong-scaling curve of
// Fig 8a, anchors included, and reports the CPE-over-MPE speedup bands
// (paper: ATM 112–184x, OCN 84–150x).
func BenchmarkFigure8aStrongScaling(b *testing.B) {
	m := newModel(b)
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		total = 0
		for _, id := range m.IDs() {
			_, pts, err := m.Fig8aSeries(id, 12)
			if err != nil {
				b.Fatal(err)
			}
			total += len(pts)
		}
	}
	b.StopTimer()
	for _, id := range m.IDs() {
		label, pts, _ := m.Fig8aSeries(id, 6)
		b.Logf("%s:", label)
		for _, p := range pts {
			mark := " "
			if p.IsAnchor {
				mark = fmt.Sprintf(" [paper %.4g]", p.Paper)
			}
			b.Logf("  %9d nodes  %12.0f res  %8.4f SYPD%s", p.Nodes, p.Resource, p.SYPD, mark)
		}
	}
	aLo, aHi, _ := m.SpeedupRange(perfmodel.CurveATM3MPE, perfmodel.CurveATM3CPE, true)
	oLo, oHi, _ := m.SpeedupRange(perfmodel.CurveOCN2MPE, perfmodel.CurveOCN2CPE, true)
	b.Logf("CPE/MPE speedup: ATM %.0f-%.0fx (paper 112-184), OCN %.0f-%.0fx (paper 84-150)", aLo, aHi, oLo, oHi)
	b.ReportMetric(float64(total), "points")
}

// BenchmarkFigure8bWeakScaling regenerates the weak-scaling ladders of
// Fig 8b (paper endpoints: ATM 87.85 %, OCN 96.57 %).
func BenchmarkFigure8bWeakScaling(b *testing.B) {
	m := newModel(b)
	var atm, ocn []perfmodel.WeakPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		atm, err = m.WeakSeries(perfmodel.CurveATM3CPE, perfmodel.ATMWeakLadder())
		if err != nil {
			b.Fatal(err)
		}
		ocn, err = m.WeakSeries(perfmodel.CurveOCN2CPE, perfmodel.OCNWeakLadder())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, series := range [][]perfmodel.WeakPoint{atm, ocn} {
		for _, p := range series {
			b.Logf("%3d km  %6d nodes  %9d cores  %7.4f SYPD  eff %.4f",
				p.ResKm, p.Nodes, p.Cores, p.SYPD, p.Efficiency)
		}
	}
	b.ReportMetric(atm[len(atm)-1].Efficiency, "atm-weak-eff")
	b.ReportMetric(ocn[len(ocn)-1].Efficiency, "ocn-weak-eff")
}

// BenchmarkFigure6TyphoonStructure runs the Doksuri vortex at two
// resolutions and measures the structure contrast of Fig 6: eye
// compactness (radius of maximum wind) and resolved fine-scale variance.
func BenchmarkFigure6TyphoonStructure(b *testing.B) {
	measure := func(level int) (rmw, fsv float64) {
		m, err := atmos.New(level, 8, atmos.DefaultConfig(), pp.NewHost(0))
		if err != nil {
			b.Fatal(err)
		}
		if err := typhoon.Seed(m, typhoon.DoksuriSeed()); err != nil {
			b.Fatal(err)
		}
		m.StepModel()
		fix, err := typhoon.FindCenter(m, time.Unix(0, 0), 900)
		if err != nil {
			b.Fatal(err)
		}
		u, v := m.Wind10m()
		speed := make([]float64, len(u))
		for i := range u {
			speed[i] = math.Hypot(u[i], v[i])
		}
		return typhoon.RadiusOfMaxWind(m, fix, 900), typhoon.FineScaleVariance(m.Mesh, speed)
	}
	var rc, rf, fc, ff float64
	for i := 0; i < b.N; i++ {
		rc, fc = measure(4) // coarse ("25v10-class")
		rf, ff = measure(5) // fine ("3v2-class")
	}
	b.ReportMetric(rc/rf, "eye-compaction-x")
	b.ReportMetric(ff/fc, "finescale-gain-x")
	b.Logf("coarse: RMW %.0f km, fine-scale %.3g;  fine: RMW %.0f km, fine-scale %.3g", rc, fc, rf, ff)
}

// BenchmarkFigure7Track runs the coupled Doksuri forecast and reports the
// simulated track against the CMA-style best track.
func BenchmarkFigure7Track(b *testing.B) {
	var trackErr float64
	for i := 0; i < b.N; i++ {
		par.Run(1, func(c *par.Comm) {
			cfg, err := core.ConfigForLabel("10v5")
			if err != nil {
				b.Fatal(err)
			}
			start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
			e, err := core.New(cfg, c, start, start.Add(48*time.Hour), pp.NewHost(0))
			if err != nil {
				b.Fatal(err)
			}
			seed := typhoon.DoksuriSeed()
			if err := typhoon.Seed(e.Atm, seed); err != nil {
				b.Fatal(err)
			}
			prev := typhoon.Fix{Time: start, LonDeg: seed.LonDeg, LatDeg: seed.LatDeg}
			var fixes []typhoon.Fix
			for h := 0; h < 2; h++ {
				for s := 0; s < 45; s++ {
					e.Step()
				}
				fix, err := typhoon.FindCenterNear(e.Atm, start.Add(time.Duration(h+1)*6*time.Hour), prev, 1200, 800)
				if err != nil {
					b.Fatal(err)
				}
				fixes = append(fixes, fix)
				prev = fix
			}
			trackErr, err = typhoon.TrackError(fixes, typhoon.BestTrackDoksuri())
			if err != nil {
				b.Fatal(err)
			}
		})
	}
	b.ReportMetric(trackErr, "track-err-km")
}

// BenchmarkAIPhysicsSuite compares the per-column cost of the AI physics
// suite against the conventional suite (§5.2.1: physics unified into tensor
// kernels) and reports the trained test losses.
func BenchmarkAIPhysicsSuite(b *testing.B) {
	m, err := atmos.New(2, 8, atmos.DefaultConfig(), pp.Serial{})
	if err != nil {
		b.Fatal(err)
	}
	suite, res, err := aiphys.TrainedSuite(m, 8, 200, 6, 42)
	if err != nil {
		b.Fatal(err)
	}
	conv := atmos.NewConventionalSuite(m)

	nlev := m.NLev
	in := atmos.ColumnIn{
		U: make([]float64, nlev), V: make([]float64, nlev),
		T: make([]float64, nlev), Q: make([]float64, nlev),
		P:   make([]float64, nlev),
		Lat: 0.3, TSkin: 300, CosZ: 0.7,
	}
	for k := 0; k < nlev; k++ {
		in.T[k] = 280
		in.P[k] = m.Sig[k] * atmos.P0
		in.Q[k] = 0.004
	}
	out := atmos.ColumnOut{
		DT: make([]float64, nlev), DQ: make([]float64, nlev),
		DU: make([]float64, nlev), DV: make([]float64, nlev),
	}

	b.Run("conventional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			conv.Column(in, 480, &out)
		}
	})
	b.Run("ai-powered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			suite.Column(in, 480, &out)
		}
	})
	b.Logf("trained test loss: CNN %.3f, MLP %.3f (zero-predictor baseline ≈ 1.0)",
		res.TestLossCNN, res.TestLossMLP)
}

// BenchmarkOceanCompaction measures the §5.2.2 exclusion: the full
// rectangular tracer sweep vs the compacted wet-column sweep, plus the
// load-balance gain of the wet-point rank remapping.
func BenchmarkOceanCompaction(b *testing.B) {
	g, err := grid.NewTripolar(144, 72, 20)
	if err != nil {
		b.Fatal(err)
	}
	par.Run(1, func(c *par.Comm) {
		blk, _ := grid.NewTripolarReplicated(g, c, 1)
		o, err := ocean.New(g, blk, ocean.DefaultConfig(), pp.Serial{})
		if err != nil {
			b.Fatal(err)
		}
		o.Step() // make state non-trivial
		comp := o.Compact()

		b.Run("full-sweep", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o.TracerSweepFull()
			}
		})
		b.Run("compacted-sweep", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o.TracerSweepCompact(comp)
			}
		})
		b.Logf("2-D work saving %.1f%%, 3-D saving %.1f%% (paper: ~30%% resources)",
			100*comp.WorkSaving(), 100*comp.WorkSaving3D())
		block, _ := ocean.BlockOwner(g, 4, 4)
		bal := ocean.BalancedOwner(g, 16)
		b.Logf("load imbalance: block %.2f -> balanced %.2f",
			block.LoadImbalance(g), bal.LoadImbalance(g))
	})
}

// BenchmarkMixedPrecision measures §5.2.3: FP64 vs group-scaled-FP32 ocean
// steps, reporting the acceptance RMSDs alongside throughput.
func BenchmarkMixedPrecision(b *testing.B) {
	run := func(b *testing.B, pol precision.Policy) {
		g, _ := grid.NewTripolar(96, 48, 10)
		par.Run(1, func(c *par.Comm) {
			blk, _ := grid.NewTripolarReplicated(g, c, 1)
			cfg := ocean.DefaultConfig()
			cfg.Policy = pol
			o, err := ocean.New(g, blk, cfg, pp.Serial{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o.Step()
			}
		})
	}
	b.Run("fp64", func(b *testing.B) { run(b, precision.FP64) })
	b.Run("mixed-fp32", func(b *testing.B) { run(b, precision.Mixed) })
	th := precision.PaperThresholds()
	b.Logf("paper acceptance: atmosphere rel-L2 < %.0f%%; ocean RMSD T %.3g degC, S %.3g psu, SSH %.4g m",
		100*th.AtmosRelL2, th.OceanTempC, th.OceanSaltPSU, th.OceanSSHm)
}

// BenchmarkCouplerRearranger compares the original all-to-all rearranger
// against the non-blocking point-to-point optimization (§5.2.4) on a
// block→cyclic redistribution.
func BenchmarkCouplerRearranger(b *testing.B) {
	const n, p = 4096, 8
	src, _ := coupler.OfflineGSMap(func(gi int) int { return gi * p / n }, n, p)
	dst, _ := coupler.OfflineGSMap(func(gi int) int { return gi % p }, n, p)
	for _, mode := range []coupler.RearrangeMode{coupler.ModeAlltoall, coupler.ModeP2P} {
		b.Run(mode.String(), func(b *testing.B) {
			par.Run(p, func(c *par.Comm) {
				r, err := coupler.BuildRouter(c, src, dst)
				if err != nil {
					b.Fatal(err)
				}
				av, _ := coupler.NewAttrVect([]string{"t", "s", "u", "v"}, r.NSrc)
				if c.Rank() == 0 {
					b.ResetTimer()
				}
				for i := 0; i < b.N; i++ {
					if _, err := coupler.Rearrange(c, r, av, mode); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkRouterOffline compares online (per-rank, communicating) router
// construction against the offline preprocessing path (§5.2.4), and
// reports table memory.
func BenchmarkRouterOffline(b *testing.B) {
	const n, p = 8192, 8
	src, _ := coupler.OfflineGSMap(func(gi int) int { return gi * p / n }, n, p)
	dst, _ := coupler.OfflineGSMap(func(gi int) int { return gi % p }, n, p)
	b.Run("online", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			par.Run(p, func(c *par.Comm) {
				if _, err := coupler.BuildRouter(c, src, dst); err != nil {
					b.Fatal(err)
				}
			})
		}
	})
	b.Run("offline", func(b *testing.B) {
		var bytes int
		for i := 0; i < b.N; i++ {
			rs, err := coupler.BuildRouterOffline(src, dst, p)
			if err != nil {
				b.Fatal(err)
			}
			bytes = rs[0].Bytes()
		}
		b.ReportMetric(float64(bytes), "router-bytes")
	})
}

// BenchmarkParallelIO compares the single-file baseline with the
// subfile-partitioned strategy (§5.2.5).
func BenchmarkParallelIO(b *testing.B) {
	const nGlobal = 1 << 18
	const ranks = 8
	mkFields := func(c *par.Comm) []pario.Field {
		per := nGlobal / c.Size()
		start := c.Rank() * per
		data := make([]float64, per)
		for i := range data {
			data[i] = float64(start + i)
		}
		return []pario.Field{{Name: "t", Global: nGlobal, Start: start, Data: data}}
	}
	b.Run("single-file", func(b *testing.B) {
		dir := b.TempDir()
		par.Run(ranks, func(c *par.Comm) {
			for i := 0; i < b.N; i++ {
				if err := pario.WriteSingle(c, fmt.Sprintf("%s/r%d.bin", dir, i%4), mkFields(c)); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("subfiles-4groups", func(b *testing.B) {
		dir := b.TempDir()
		par.Run(ranks, func(c *par.Comm) {
			for i := 0; i < b.N; i++ {
				if err := pario.WriteSubfiles(c, dir, 4, mkFields(c)); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkPortabilityBackends runs the same axpy-like kernel through every
// execution space (§5.3) and the hash-registry dispatch.
func BenchmarkPortabilityBackends(b *testing.B) {
	const n = 1 << 20
	x := make([]float64, n)
	y := make([]float64, n)
	rng := rand.New(rand.NewSource(9))
	for i := range x {
		x[i] = rng.Float64()
	}
	kernel := func(sp pp.Space) {
		sp.ParallelFor(n, func(i int) { y[i] = 2.5*x[i] + y[i] })
	}
	for _, sp := range []pp.Space{pp.Serial{}, pp.NewHost(0), pp.NewCPE(256)} {
		b.Run(sp.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kernel(sp)
			}
		})
	}
	b.Run("hash-registry-dispatch", func(b *testing.B) {
		reg := pp.NewRegistry()
		h := reg.MustRegister("bench.axpy", func(sp pp.Space, args any) { kernel(sp) })
		sp := pp.NewHost(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := reg.Launch(h, sp, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTaskLayouts evaluates the §5.1.2 task-parallel strategies on the
// calibrated model: sequential single-domain vs concurrent two-domain with
// the optimized resource split (the paper's production layout).
func BenchmarkTaskLayouts(b *testing.B) {
	m := newModel(b)
	atm := m.MustCurve(perfmodel.CurveATM3CPE)
	ocn := m.MustCurve(perfmodel.CurveOCN2CPE)
	cores := 3.0e7
	cpl := perfmodel.ImpliedCouplerTime(m.MustCurve(perfmodel.CurveESM3v2), atm, ocn, cores)
	var seq, conc perfmodel.LayoutResult
	for i := 0; i < b.N; i++ {
		seq = perfmodel.SequentialLayout(atm, ocn, cores, cpl)
		var err error
		conc, err = perfmodel.OptimalSplit(atm, ocn, cores, cpl)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(seq.SYPD, "sequential-SYPD")
	b.ReportMetric(conc.SYPD, "concurrent-SYPD")
	b.ReportMetric(conc.AtmFraction, "atm-share")
	b.Logf("sequential %.3f SYPD; concurrent %.3f SYPD at atm share %.2f (fitted 3v2 curve: %.3f)",
		seq.SYPD, conc.SYPD, conc.AtmFraction, m.MustCurve(perfmodel.CurveESM3v2).SYPD(cores))
}

// BenchmarkCoupledESM measures the miniature coupled model's real SYPD, the
// same metric and measurement the paper uses (§6.2), on the 25v10-mapped
// configuration.
func BenchmarkCoupledESM(b *testing.B) {
	par.Run(1, func(c *par.Comm) {
		cfg, err := core.ConfigForLabel("25v10")
		if err != nil {
			b.Fatal(err)
		}
		start := time.Date(2023, 7, 21, 0, 0, 0, 0, time.UTC)
		e, err := core.New(cfg, c, start, start.Add(1000*time.Hour), pp.NewHost(0))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var sypd float64
		for i := 0; i < b.N; i++ {
			s, err := e.MeasureSYPD(5)
			if err != nil {
				b.Fatal(err)
			}
			sypd = s
		}
		b.ReportMetric(sypd, "SYPD")
	})
}
